// Faulty transport: a seeded fault-injection decorator for lossy-network testing.
//
// Wraps the in-process transport and, from a single seed plus a rate profile, injects the
// failure modes a real network exhibits: packet drop, duplication, bounded reordering, and
// transient single-node partitions. Per-(src, dst) fault decisions are drawn from a pair-local
// RNG keyed by (seed, src, dst) and the pair's packet index, so the fault pattern a given
// sender/receiver pair experiences is reproducible from (seed, rates) alone regardless of how
// the application threads interleave. Partition scheduling uses one shared seeded stream; the
// schedule of decisions is deterministic, while which packet each decision lands on follows
// the global send interleaving.
//
// This transport deliberately violates the delivery guarantees the DSM protocol assumes
// (per-pair FIFO, exactly-once): it must only be used underneath the reliable delivery
// channel (src/core/reliable.h), which restores them.
#ifndef MIDWAY_SRC_NET_FAULTY_TRANSPORT_H_
#define MIDWAY_SRC_NET_FAULTY_TRANSPORT_H_

#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/net/inproc_transport.h"

namespace midway {

// A scheduled node crash, consulted by the runtime: when `node`'s sync-point counter
// (acquire + release + barrier-wait entries) reaches `at_sync_point`, the application thread
// throws NodeCrashed and the transport cuts the node off mid-protocol. With `restart` true,
// System boots a fresh incarnation of the node that replays its checkpoint log and rejoins
// via the recovery protocol; otherwise the node stays dead.
struct CrashEvent {
  NodeId node = 0;
  uint32_t at_sync_point = 0;
  bool restart = false;
};

// A scheduled transient stall: starting at global send number `at_send`, packets to and from
// `node` are buffered (not dropped) for `packets` further global sends, then flushed in
// order. Models a long GC pause or scheduler hiccup — the node is healthy but silent, which
// is exactly the false-positive case a failure detector must survive.
struct StallEvent {
  NodeId node = 0;
  uint64_t at_send = 0;
  uint64_t packets = 64;
};

// A scripted membership-chaos window: between `start_us` and `end_us` (measured on the
// steady clock from transport construction), a class of the victim's traffic is silently
// dropped, then delivery heals. Unlike the probabilistic faults these are direct levers on
// the failure detector — they manufacture false suspicion and asymmetric partitions on
// demand, at any node count, reproducibly from the schedule alone:
//
//   kMuteHeartbeats  — heartbeats/acks *from* the victim die; its data traffic still flows.
//                      Peers declare a perfectly healthy node dead (pure false suspicion).
//   kIsolateOutbound — everything the victim sends dies; it still hears its peers. The
//                      victim watches itself get buried in real time.
//   kIsolateInbound  — everything sent *to* the victim dies; its own traffic still flows.
//                      The victim wrongly buries everyone else.
struct ChaosEvent {
  enum class Kind : uint8_t { kMuteHeartbeats = 0, kIsolateOutbound, kIsolateInbound };
  Kind kind = Kind::kMuteHeartbeats;
  NodeId victim = 0;
  uint64_t start_us = 0;  // window opens (inclusive)
  uint64_t end_us = 0;    // window heals (exclusive)
};

// Fault rates are probabilities per Send call. Self-sends (src == dst) are never faulted:
// they model intra-node queueing, not the network.
struct FaultProfile {
  uint64_t seed = 1;
  double drop_rate = 0.0;       // packet silently discarded
  double dup_rate = 0.0;        // packet delivered twice
  double reorder_rate = 0.0;    // packet held and swapped with the pair's next packet
  double partition_rate = 0.0;  // chance per packet that a transient partition begins
  uint32_t partition_packets = 64;  // global sends for which the victim stays cut off

  // Crash/stall schedules (deterministic given the schedule; see CrashEvent/StallEvent).
  std::vector<CrashEvent> crashes;
  std::vector<StallEvent> stalls;
  // Scripted suppression windows (see ChaosEvent). May overlap; any matching active window
  // drops the packet.
  std::vector<ChaosEvent> chaos;
  // When true, the chaos schedule is inert until DebugArmChaos() re-anchors its clock.
  // Window offsets are steady-clock, so a schedule anchored at construction starts ticking
  // while an oversubscribed host is still spawning node threads; deferred arming lets a
  // test rendezvous first and then measure windows from a cluster that is actually up.
  bool chaos_deferred = false;

  // The acceptance profile of the seeded stress suite: 10% drop + 5% duplication.
  static FaultProfile Lossy(uint64_t seed) {
    FaultProfile p;
    p.seed = seed;
    p.drop_rate = 0.10;
    p.dup_rate = 0.05;
    return p;
  }
};

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(NodeId num_nodes, const FaultProfile& profile);

  NodeId NumNodes() const override { return inner_.NumNodes(); }
  void Send(NodeId src, NodeId dst, std::vector<std::byte> payload) override;
  bool Recv(NodeId self, Packet* out) override { return inner_.Recv(self, out); }
  void Shutdown() override;
  uint64_t BytesSent() const override { return inner_.BytesSent(); }
  uint64_t PacketsSent() const override { return inner_.PacketsSent(); }

  // Crash simulation: a crashed node's traffic is discarded in both directions, any held or
  // stalled packets involving it die, and its mailbox closes so the blocked comm thread
  // exits. ReviveNode readmits a restarted incarnation with an empty mailbox.
  void CrashNode(NodeId node) override;
  void ReviveNode(NodeId node) override;

  // Injection accounting (for tests and the fault-harness report).
  struct InjectionStats {
    uint64_t sends = 0;            // Send calls observed
    uint64_t dropped = 0;          // packets discarded by the drop rate
    uint64_t duplicated = 0;       // extra copies delivered
    uint64_t reordered = 0;        // packets swapped with their pair successor
    uint64_t partition_drops = 0;  // packets discarded because a partition was active
    uint64_t partitions = 0;       // transient partitions started
    uint64_t crash_drops = 0;      // packets discarded to/from a crashed node
    uint64_t stalled = 0;          // packets buffered by a scheduled stall
    uint64_t chaos_hb_mutes = 0;   // heartbeats/acks muted by a kMuteHeartbeats window
    uint64_t chaos_drops = 0;      // packets dropped by an isolation window
  };
  InjectionStats Stats() const;

  // Chaos schedule control (tests only). Arm re-anchors chaos time zero to now and activates
  // a deferred schedule; Heal immediately and permanently closes every window — the
  // suppression lasted exactly as long as the condition the test was manufacturing needed,
  // no matter how slowly the host convicts.
  void DebugArmChaos();
  void DebugHealChaos();

 private:
  struct PairState {
    SplitMix64 rng;
    // A packet held back by the reorder fault; delivered after the pair's next packet.
    std::optional<std::vector<std::byte>> held;
    explicit PairState(uint64_t seed) : rng(seed) {}
  };

  PairState& StateFor(NodeId src, NodeId dst);
  // True if an active chaos window says this packet must die. Caller holds mu_.
  bool ChaosDropsLocked(NodeId src, NodeId dst, const std::vector<std::byte>& payload);

  const FaultProfile profile_;
  uint64_t chaos_epoch_us_;  // steady-clock stamp of chaos time zero (construction or arm)
  bool chaos_armed_;         // false while a deferred schedule awaits DebugArmChaos()
  bool chaos_healed_ = false;  // DebugHealChaos() closed every window for good
  InProcTransport inner_;

  mutable std::mutex mu_;
  std::map<std::pair<NodeId, NodeId>, PairState> pairs_;
  SplitMix64 partition_rng_;
  uint64_t send_count_ = 0;
  NodeId partition_victim_ = 0;
  uint64_t partition_until_ = 0;  // send_count_ below which the victim is unreachable
  bool shutdown_ = false;
  InjectionStats stats_;

  // Crash/stall machinery.
  struct StalledPacket {
    NodeId src;
    NodeId dst;
    std::vector<std::byte> payload;
  };
  std::vector<bool> crashed_;
  size_t next_stall_ = 0;          // index into profile_.stalls (consumed in order)
  NodeId stall_victim_ = 0;
  uint64_t stall_until_ = 0;       // send_count_ below which the victim's traffic is held
  bool stall_active_ = false;
  std::vector<StalledPacket> held_by_stall_;
};

}  // namespace midway

#endif  // MIDWAY_SRC_NET_FAULTY_TRANSPORT_H_
