#include "src/net/recv_buffer.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace midway {
namespace net {

RecvBufferPool::RecvBufferPool(size_t buffer_bytes)
    : buffer_bytes_(buffer_bytes), state_(std::make_shared<State>()) {
  MIDWAY_CHECK_GT(buffer_bytes, kFrameHeaderBytes);
}

std::shared_ptr<std::vector<std::byte>> RecvBufferPool::Get(size_t min_bytes) {
  const size_t want = std::max(min_bytes, buffer_bytes_);
  std::unique_ptr<std::vector<std::byte>> buf;
  if (want == buffer_bytes_) {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->free.empty()) {
      buf = std::move(state_->free.back());
      state_->free.pop_back();
      state_->reuses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!buf) {
    buf = std::make_unique<std::vector<std::byte>>(want);
    state_->allocations.fetch_add(1, std::memory_order_relaxed);
  }
  // The deleter recycles pool-sized buffers while the pool state lives; dedicated oversize
  // buffers (and anything released after pool teardown) are simply freed.
  const size_t pooled_size = buffer_bytes_;
  std::weak_ptr<State> weak_state = state_;
  return std::shared_ptr<std::vector<std::byte>>(
      buf.release(), [pooled_size, weak_state](std::vector<std::byte>* v) {
        std::unique_ptr<std::vector<std::byte>> owned(v);
        if (owned->size() != pooled_size) return;
        if (auto state = weak_state.lock()) {
          std::lock_guard<std::mutex> lock(state->mu);
          if (state->free.size() < kMaxFreeBuffers) {
            state->free.push_back(std::move(owned));
          }
        }
      });
}

size_t RecvBufferPool::FreeCount() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->free.size();
}

FrameAssembler::FrameAssembler(RecvBufferPool* pool, size_t max_frame_bytes)
    : pool_(pool), max_frame_bytes_(max_frame_bytes) {
  MIDWAY_CHECK(pool != nullptr);
}

std::span<std::byte> FrameAssembler::WritableTail(size_t min_hint) {
  min_hint = std::clamp<size_t>(min_hint, 1, pool_->buffer_bytes());
  // Once a header announces a frame that cannot complete inside the current buffer, roll
  // right away: the later the roll, the more already-received payload has to be carried.
  const bool frame_cannot_complete =
      buf_ && state_ == State::kPayload && parse_ + frame_len_ > buf_->size();
  if (buf_ && !frame_cannot_complete && buf_->size() - fill_ >= min_hint) {
    return {buf_->data() + fill_, buf_->size() - fill_};
  }
  // Roll to a fresh buffer, carrying the unfinished frame fragment (partial header bytes or
  // the received prefix of a payload) along. These carried bytes are the only receive-side
  // copies the transport ever makes.
  const size_t pending = fill_ - parse_;
  size_t want = pool_->buffer_bytes();
  if (state_ == State::kPayload && frame_len_ > want) want = frame_len_;  // oversized frame
  want = std::max(want, pending + min_hint);
  auto fresh = pool_->Get(want);
  if (pending > 0) {
    std::memcpy(fresh->data(), buf_->data() + parse_, pending);
    bytes_copied_.fetch_add(pending, std::memory_order_relaxed);
  }
  buf_ = std::move(fresh);
  parse_ = 0;
  fill_ = pending;
  return {buf_->data() + fill_, buf_->size() - fill_};
}

void FrameAssembler::CommitRead(size_t n) {
  MIDWAY_CHECK(buf_ != nullptr);
  MIDWAY_CHECK_LE(n, buf_->size() - fill_);
  fill_ += n;
}

bool FrameAssembler::Next(RecvFrame* out) {
  if (error_) return false;
  if (state_ == State::kHeader) {
    if (fill_ - parse_ < kFrameHeaderBytes) return false;
    const auto* h = reinterpret_cast<const uint8_t*>(buf_->data() + parse_);
    frame_len_ = static_cast<uint32_t>(h[0]) | (static_cast<uint32_t>(h[1]) << 8) |
                 (static_cast<uint32_t>(h[2]) << 16) | (static_cast<uint32_t>(h[3]) << 24);
    frame_src_ = static_cast<uint16_t>(h[4]) | static_cast<uint16_t>(h[5] << 8);
    if (frame_len_ > max_frame_bytes_) {
      error_ = true;
      error_message_ = "frame length " + std::to_string(frame_len_) + " exceeds the " +
                       std::to_string(max_frame_bytes_) + "-byte cap";
      return false;
    }
    parse_ += kFrameHeaderBytes;
    state_ = State::kPayload;
  }
  if (fill_ - parse_ < frame_len_) return false;
  out->src = frame_src_;
  out->payload = {buf_->data() + parse_, frame_len_};
  out->keepalive = buf_;
  parse_ += frame_len_;
  state_ = State::kHeader;
  return true;
}

}  // namespace net
}  // namespace midway
