// Shared low-level socket helpers for the TCP transports.
#ifndef MIDWAY_SRC_NET_SOCKET_UTIL_H_
#define MIDWAY_SRC_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace midway {
namespace net {

// Reads exactly n bytes; returns false on EOF or unrecoverable error.
bool ReadExact(int fd, void* buf, size_t n);
// Writes exactly n bytes (MSG_NOSIGNAL); returns false on unrecoverable error.
bool WriteExact(int fd, const void* buf, size_t n);

// Creates a listening IPv4 socket. `port` == 0 picks an ephemeral port; the actual port is
// written back through `port`. Aborts (MIDWAY_CHECK) on socket errors.
int Listen(const std::string& host, uint16_t* port, int backlog = 64);

// Connects to host:port, retrying for up to `timeout_ms` while the peer is not yet
// listening (multi-process bootstrap). Aborts on timeout.
int ConnectWithRetry(const std::string& host, uint16_t port, int timeout_ms = 10'000);

void EnableNodelay(int fd);

}  // namespace net
}  // namespace midway

#endif  // MIDWAY_SRC_NET_SOCKET_UTIL_H_
