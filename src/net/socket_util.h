// Shared low-level socket helpers for the TCP transports.
#ifndef MIDWAY_SRC_NET_SOCKET_UTIL_H_
#define MIDWAY_SRC_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace midway {
namespace net {

// Reads exactly n bytes; returns false on EOF or unrecoverable error.
bool ReadExact(int fd, void* buf, size_t n);
// Writes exactly n bytes (MSG_NOSIGNAL); returns false on unrecoverable error.
bool WriteExact(int fd, const void* buf, size_t n);

struct IoSlice {
  const void* data = nullptr;
  size_t size = 0;
};

// Scatter-gather write: sends every slice, in order, as one byte stream (sendmsg with
// MSG_NOSIGNAL, resuming partial writes and batching past IOV_MAX). Returns false on
// unrecoverable error. Zero-length slices are allowed.
bool WritevExact(int fd, const IoSlice* slices, size_t count);

// Creates a listening IPv4 socket. `port` == 0 picks an ephemeral port; the actual port is
// written back through `port`. Aborts (MIDWAY_CHECK) on socket errors.
int Listen(const std::string& host, uint16_t* port, int backlog = 64);

// Connects to host:port, retrying for up to `timeout_ms` while the peer is not yet
// listening (multi-process bootstrap). Aborts on timeout.
int ConnectWithRetry(const std::string& host, uint16_t port, int timeout_ms = 10'000);

void EnableNodelay(int fd);

// Per-connection tuning for the mesh data path: TCP_NODELAY (small sync messages must not
// wait for Nagle) plus optional SO_SNDBUF/SO_RCVBUF sizing from the
// MIDWAY_SOCKET_BUFFER_BYTES environment variable (0/unset keeps the kernel default). The
// effective values are logged once per process at Info level.
void TuneSocket(int fd);

}  // namespace net
}  // namespace midway

#endif  // MIDWAY_SRC_NET_SOCKET_UTIL_H_
