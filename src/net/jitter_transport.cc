#include "src/net/jitter_transport.h"

namespace midway {

JitterTransport::JitterTransport(NodeId num_nodes, uint64_t seed, uint32_t max_delay_us)
    : inner_(num_nodes), rng_(seed), max_delay_us_(max_delay_us) {
  pump_ = std::thread([this] { PumpLoop(); });
}

JitterTransport::~JitterTransport() {
  Shutdown();
  if (pump_.joinable()) {
    pump_.join();
  }
}

void JitterTransport::Send(NodeId src, NodeId dst, std::vector<std::byte> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  auto deliver_at =
      Clock::now() + std::chrono::microseconds(rng_.NextBounded(max_delay_us_ + 1));
  // FIFO per pair: never schedule before the previous packet on the same (src, dst).
  Clock::time_point& floor = pair_floor_[{src, dst}];
  if (deliver_at < floor) {
    deliver_at = floor;
  }
  floor = deliver_at;
  heap_.push(Delayed{deliver_at, next_sequence_++, src, dst, std::move(payload)});
  cv_.notify_one();
}

void JitterTransport::PumpLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_ && heap_.empty()) {
      return;
    }
    if (heap_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const Clock::time_point due = heap_.top().deliver_at;
    if (Clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    Delayed item = heap_.top();
    heap_.pop();
    lock.unlock();
    inner_.Send(item.src, item.dst, std::move(item.payload));
    lock.lock();
  }
}

void JitterTransport::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (pump_.joinable() && std::this_thread::get_id() != pump_.get_id()) {
    pump_.join();
  }
  inner_.Shutdown();
}

}  // namespace midway
