// TCP transport: a full mesh of localhost TCP connections between nodes.
//
// All nodes live in one process (they are the DSM "processor" threads), but every byte of
// every protocol message travels through a real kernel socket, so the serialization code and
// messaging costs are exercised exactly as they would be across machines.
//
// Frame format on the wire: u32 length (little endian) | u16 source node | payload bytes.
// One receive thread per connection endpoint performs blocking MSG_WAITALL reads and pushes
// complete frames into the destination node's mailbox.
#ifndef MIDWAY_SRC_NET_TCP_TRANSPORT_H_
#define MIDWAY_SRC_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/transport.h"

namespace midway {

class TcpTransport final : public Transport {
 public:
  // Builds the mesh synchronously; throws via MIDWAY_CHECK on socket errors. Uses ephemeral
  // ports on 127.0.0.1, so multiple transports can coexist.
  explicit TcpTransport(NodeId num_nodes);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  NodeId NumNodes() const override { return num_nodes_; }
  void Send(NodeId src, NodeId dst, std::vector<std::byte> payload) override;
  // Zero-copy fast path: frame header + every segment go to the kernel in one writev, with
  // no intermediate gather buffer (except for self-sends, which must own their bytes).
  void SendV(NodeId src, NodeId dst,
             std::span<const std::span<const std::byte>> segments) override;
  bool Recv(NodeId self, Packet* out) override;
  void Shutdown() override;
  uint64_t BytesSent() const override { return bytes_sent_.load(std::memory_order_relaxed); }
  uint64_t PacketsSent() const override { return packets_sent_.load(std::memory_order_relaxed); }

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Packet> queue;
  };

  struct Link {
    int fd = -1;          // This endpoint's socket for the (owner, peer) connection.
    std::mutex send_mu;   // Serializes writes on fd.
    std::thread reader;   // Reads frames arriving on fd, delivers to owner's mailbox.
  };

  void Deliver(NodeId dst, Packet packet);
  void ReaderLoop(NodeId owner, Link* link);

  NodeId num_nodes_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  // links_[i][j]: node i's endpoint of the i<->j connection (j != i), else fd == -1.
  std::vector<std::vector<std::unique_ptr<Link>>> links_;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> packets_sent_{0};
};

}  // namespace midway

#endif  // MIDWAY_SRC_NET_TCP_TRANSPORT_H_
