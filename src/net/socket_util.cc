#include "src/net/socket_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/check.h"

namespace midway {
namespace net {

bool ReadExact(int fd, void* buf, size_t n) {
  auto* p = static_cast<std::byte*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

bool WriteExact(int fd, const void* buf, size_t n) {
  const auto* p = static_cast<const std::byte*>(buf);
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

int Listen(const std::string& host, uint16_t* port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MIDWAY_CHECK_GE(fd, 0) << " socket(): " << std::strerror(errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  MIDWAY_CHECK_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1)
      << " bad address " << host;
  addr.sin_port = htons(*port);
  MIDWAY_CHECK_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << " bind(" << host << ":" << *port << "): " << std::strerror(errno);
  MIDWAY_CHECK_EQ(::listen(fd, backlog), 0) << " listen(): " << std::strerror(errno);
  socklen_t len = sizeof(addr);
  MIDWAY_CHECK_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port = ntohs(addr.sin_port);
  return fd;
}

int ConnectWithRetry(const std::string& host, uint16_t port, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  // Exponential backoff between attempts: dense retries while the peer is about to come up
  // (the common multi-process bootstrap case), without hammering a peer that is genuinely
  // down for the whole window.
  std::chrono::milliseconds backoff{2};
  constexpr std::chrono::milliseconds kMaxBackoff{200};
  int attempts = 0;
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MIDWAY_CHECK_GE(fd, 0) << " socket(): " << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    MIDWAY_CHECK_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    const int saved_errno = errno;
    ::close(fd);
    ++attempts;
    const auto now = std::chrono::steady_clock::now();
    MIDWAY_CHECK(now < deadline)
        << " connect(" << host << ":" << port << ") timed out after " << attempts
        << " attempts: " << std::strerror(saved_errno);
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(std::min(backoff, remaining));
    backoff = std::min(backoff * 2, kMaxBackoff);
  }
}

void EnableNodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace net
}  // namespace midway
