#include "src/net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/log.h"

namespace midway {
namespace net {

bool ReadExact(int fd, void* buf, size_t n) {
  auto* p = static_cast<std::byte*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

bool WriteExact(int fd, const void* buf, size_t n) {
  const auto* p = static_cast<const std::byte*>(buf);
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

int Listen(const std::string& host, uint16_t* port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MIDWAY_CHECK_GE(fd, 0) << " socket(): " << std::strerror(errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  MIDWAY_CHECK_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1)
      << " bad address " << host;
  addr.sin_port = htons(*port);
  MIDWAY_CHECK_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << " bind(" << host << ":" << *port << "): " << std::strerror(errno);
  MIDWAY_CHECK_EQ(::listen(fd, backlog), 0) << " listen(): " << std::strerror(errno);
  socklen_t len = sizeof(addr);
  MIDWAY_CHECK_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port = ntohs(addr.sin_port);
  return fd;
}

int ConnectWithRetry(const std::string& host, uint16_t port, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  // Exponential backoff between refused attempts: dense retries while the peer is about to
  // come up (the common multi-process bootstrap case), without hammering a peer that is
  // genuinely down for the whole window.
  std::chrono::milliseconds backoff{2};
  constexpr std::chrono::milliseconds kMaxBackoff{200};
  int attempts = 0;
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    MIDWAY_CHECK_GE(fd, 0) << " socket(): " << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    MIDWAY_CHECK_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1);
    addr.sin_port = htons(port);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      // Handshake in flight: poll writability up to the remaining window instead of
      // sleeping a fixed interval — we wake the instant the SYN-ACK lands.
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, std::max<int>(1, static_cast<int>(remaining.count()))) == 1) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) {
          rc = 0;
        } else {
          errno = err;
        }
      } else {
        errno = ETIMEDOUT;
      }
    }
    if (rc == 0) {
      // Callers expect a blocking socket; event-loop owners flip it back themselves.
      const int flags = ::fcntl(fd, F_GETFL, 0);
      MIDWAY_CHECK_GE(flags, 0) << " fcntl(F_GETFL): " << std::strerror(errno);
      MIDWAY_CHECK_EQ(::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK), 0)
          << " fcntl(F_SETFL): " << std::strerror(errno);
      return fd;
    }
    const int saved_errno = errno;
    ::close(fd);
    ++attempts;
    const auto now = std::chrono::steady_clock::now();
    MIDWAY_CHECK(now < deadline)
        << " connect(" << host << ":" << port << ") timed out after " << attempts
        << " attempts: " << std::strerror(saved_errno);
    // A refused connect fails instantly — there is no fd to poll until the peer binds its
    // listener, so a brief capped backoff is the only option on this branch.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(std::min(backoff, remaining));
    backoff = std::min(backoff * 2, kMaxBackoff);
  }
}

bool WritevExact(int fd, const IoSlice* slices, size_t count) {
  // Local iovec copy: partial writes mutate base/len as they resume.
  std::vector<iovec> iov(count);
  for (size_t i = 0; i < count; ++i) {
    iov[i].iov_base = const_cast<void*>(slices[i].data);
    iov[i].iov_len = slices[i].size;
  }
  size_t idx = 0;
  while (idx < count) {
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    msghdr msg{};
    msg.msg_iov = iov.data() + idx;
    msg.msg_iovlen = std::min(count - idx, static_cast<size_t>(IOV_MAX));
    ssize_t r = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    auto n = static_cast<size_t>(r);
    while (idx < count && n >= iov[idx].iov_len) {
      n -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count && n > 0) {
      iov[idx].iov_base = static_cast<std::byte*>(iov[idx].iov_base) + n;
      iov[idx].iov_len -= n;
    }
  }
  return true;
}

void EnableNodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

// MIDWAY_SOCKET_BUFFER_BYTES, parsed once. 0 = keep the kernel default.
int ConfiguredSocketBufferBytes() {
  static const int bytes = [] {
    const char* env = std::getenv("MIDWAY_SOCKET_BUFFER_BYTES");
    if (env == nullptr || *env == '\0') return 0;
    return std::max(0, std::atoi(env));
  }();
  return bytes;
}

}  // namespace

void TuneSocket(int fd) {
  EnableNodelay(fd);
  const int want = ConfiguredSocketBufferBytes();
  if (want > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &want, sizeof(want));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &want, sizeof(want));
  }
  static std::once_flag log_once;
  std::call_once(log_once, [fd, want] {
    int nodelay = 0;
    int sndbuf = 0;
    int rcvbuf = 0;
    socklen_t len = sizeof(int);
    ::getsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, &len);
    len = sizeof(int);
    ::getsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, &len);
    len = sizeof(int);
    ::getsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, &len);
    MIDWAY_LOG(Info) << "socket tuning: TCP_NODELAY=" << nodelay << " SO_SNDBUF=" << sndbuf
                     << " SO_RCVBUF=" << rcvbuf
                     << (want > 0 ? " (MIDWAY_SOCKET_BUFFER_BYTES=" + std::to_string(want) + ")"
                                  : " (kernel default buffers)");
  });
}

}  // namespace net
}  // namespace midway
