// midway-lint: compile-time protocol-discipline analyzer for the midway DSM.
//
// Codifies the repo's write-detection soundness contracts as named, individually testable
// rules (R1..R6, docs/ANALYSIS.md) over a comment/scope-aware view of the C++ sources —
// no LLVM dependency, builds wherever CI does. Emits `file:line: rule-id: message`, an
// optional --json report, supports --baseline suppressions, and maintains the golden wire
// schema (--update-wire-golden). Exit: 0 clean, 1 findings, 2 usage/internal error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/midway_lint/rules.h"
#include "tools/midway_lint/source_model.h"

namespace fs = std::filesystem;
using midway_lint::Finding;
using midway_lint::LintTree;

namespace {

constexpr const char* kUsage =
    R"(usage: midway-lint [options]

Protocol-discipline analyzer for the midway DSM (see docs/ANALYSIS.md).

options:
  --root=DIR            tree to scan (default: .); expects src/, examples/, bench/ under it
  --rules=R1,R4,...     run only rules whose id starts with a listed prefix (default: all)
  --json=FILE           write a machine-readable report
  --baseline=FILE       suppression list (default: <root>/tools/lint_baseline.txt if present)
  --golden=FILE         golden wire schema (default: <root>/tools/wire_schema.golden)
  --update-wire-golden  regenerate the golden wire schema from the tree and exit
  --list-rules          print the rule ids and one-line summaries
  -h, --help            this text
)";

struct Options {
  std::string root = ".";
  std::string json;
  std::string baseline;
  std::string golden;
  std::vector<std::string> rules;
  bool update_golden = false;
  bool list_rules = false;
};

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accepts both --flag=value and --flag value.
    auto value = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      if (arg == flag && i + 1 < argc) {
        return argv[++i];
      }
      return nullptr;
    };
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--list-rules") {
      opt->list_rules = true;
    } else if (arg == "--update-wire-golden") {
      opt->update_golden = true;
    } else if (const char* v = value("--root")) {
      opt->root = v;
    } else if (const char* v = value("--json")) {
      opt->json = v;
    } else if (const char* v = value("--baseline")) {
      opt->baseline = v;
    } else if (const char* v = value("--golden")) {
      opt->golden = v;
    } else if (const char* v = value("--rules")) {
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) opt->rules.push_back(item);
      }
    } else {
      std::cerr << "midway-lint: unknown argument '" << arg << "'\n" << kUsage;
      return false;
    }
  }
  return true;
}

bool RuleEnabled(const Options& opt, const char* rule) {
  if (opt.rules.empty()) return true;
  for (const std::string& prefix : opt.rules) {
    if (std::string(rule).rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// The scanned tree: every C++ source under the protocol-relevant directories. tests/ is
// excluded by design (tests exercise raw paths and detector internals deliberately);
// tools/ is excluded so the analyzer never lints itself into a fixpoint problem.
std::vector<std::string> CollectFiles(const std::string& root) {
  std::vector<std::string> out;
  for (const char* dir : {"src", "examples", "bench"}) {
    fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".cc" && ext != ".h" && ext != ".cpp") continue;
      out.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  return out;
}

// Baseline format, one suppression per line (# comments allowed):
//   <rule-id> <root-relative-path>[:<line>]
// Every baseline entry must carry a justification comment — reviewed in docs/ANALYSIS.md.
struct BaselineEntry {
  std::string rule;
  std::string file;
  int line = 0;  // 0 = any line in the file
};

std::vector<BaselineEntry> LoadBaseline(const std::string& path) {
  std::vector<BaselineEntry> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::stringstream ss(line);
    BaselineEntry e;
    if (!(ss >> e.rule >> e.file)) continue;
    size_t colon = e.file.rfind(':');
    if (colon != std::string::npos &&
        e.file.find_first_not_of("0123456789", colon + 1) == std::string::npos) {
      e.line = std::atoi(e.file.c_str() + colon + 1);
      e.file = e.file.substr(0, colon);
    }
    out.push_back(e);
  }
  return out;
}

bool Suppressed(const Finding& f, const std::vector<BaselineEntry>& baseline) {
  for (const BaselineEntry& e : baseline) {
    if (e.rule == f.rule && e.file == f.file && (e.line == 0 || e.line == f.line)) {
      return true;
    }
  }
  return false;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool WriteJson(const std::string& path, const std::vector<Finding>& findings,
               const std::vector<Finding>& suppressed, size_t files_scanned) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n  \"tool\": \"midway-lint\",\n  \"schema\": \"midway-lint/v1\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  auto dump = [&](const char* key, const std::vector<Finding>& list) {
    out << "  \"" << key << "\": [";
    for (size_t i = 0; i < list.size(); ++i) {
      const Finding& f = list[i];
      out << (i ? "," : "") << "\n    {\"file\": \"" << JsonEscape(f.file)
          << "\", \"line\": " << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
          << "\", \"message\": \"" << JsonEscape(f.message) << "\"}";
    }
    out << (list.empty() ? "" : "\n  ") << "]";
  };
  dump("findings", findings);
  out << ",\n";
  dump("suppressed", suppressed);
  out << "\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return 2;

  if (opt.list_rules) {
    std::cout
        << midway_lint::kRuleR1
        << "    raw_mutable() only inside `// init-phase` scopes, before BeginParallel\n"
        << midway_lint::kRuleR2
        << "      no node-0 pinning / modulo home assignment in coordination paths\n"
        << midway_lint::kRuleR3
        << " NodeHealth::kDead only in the failure detector and recovery module\n"
        << midway_lint::kRuleR4
        << "   trace emission and Span ends in Runtime must be mu_-guarded\n"
        << midway_lint::kRuleR5
        << "   wire-struct layout drift vs tools/wire_schema.golden\n"
        << midway_lint::kRuleR6
        << " MIDWAY_COUNTER_FIELDS entries all bumped; all bumps declared\n";
    return 0;
  }

  std::error_code ec;
  fs::path root_abs = fs::canonical(opt.root, ec);
  if (ec) {
    std::cerr << "midway-lint: cannot resolve --root=" << opt.root << ": " << ec.message()
              << "\n";
    return 2;
  }
  const std::string root = root_abs.generic_string();
  if (opt.golden.empty()) opt.golden = root + "/tools/wire_schema.golden";
  if (opt.baseline.empty()) {
    std::string candidate = root + "/tools/lint_baseline.txt";
    if (fs::exists(candidate)) opt.baseline = candidate;
  }

  LintTree tree(root, CollectFiles(root));
  std::vector<Finding> findings;

  if (opt.update_golden) {
    midway_lint::RunR5(tree, opt.golden, /*update=*/true, &findings);
    if (!findings.empty()) {
      for (const Finding& f : findings) {
        std::cerr << f.file << ":" << f.line << ": " << f.rule << ": " << f.message << "\n";
      }
      return 2;
    }
    std::cout << "midway-lint: wrote " << opt.golden << "\n";
    return 0;
  }

  if (RuleEnabled(opt, midway_lint::kRuleR1)) midway_lint::RunR1(tree, &findings);
  if (RuleEnabled(opt, midway_lint::kRuleR2)) midway_lint::RunR2(tree, &findings);
  if (RuleEnabled(opt, midway_lint::kRuleR3)) midway_lint::RunR3(tree, &findings);
  if (RuleEnabled(opt, midway_lint::kRuleR4)) midway_lint::RunR4(tree, &findings);
  if (RuleEnabled(opt, midway_lint::kRuleR5)) {
    midway_lint::RunR5(tree, opt.golden, /*update=*/false, &findings);
  }
  if (RuleEnabled(opt, midway_lint::kRuleR6)) midway_lint::RunR6(tree, &findings);

  std::vector<BaselineEntry> baseline;
  if (!opt.baseline.empty()) baseline = LoadBaseline(opt.baseline);
  std::vector<Finding> active;
  std::vector<Finding> suppressed;
  for (Finding& f : findings) {
    (Suppressed(f, baseline) ? suppressed : active).push_back(std::move(f));
  }
  std::sort(active.begin(), active.end());
  std::sort(suppressed.begin(), suppressed.end());

  for (const Finding& f : active) {
    std::cout << f.file << ":" << f.line << ": " << f.rule << ": " << f.message << "\n";
  }

  if (!opt.json.empty() && !WriteJson(opt.json, active, suppressed, tree.files().size())) {
    std::cerr << "midway-lint: cannot write --json=" << opt.json << "\n";
    return 2;
  }

  if (active.empty()) {
    std::cout << "midway-lint: OK (" << tree.files().size() << " files";
    if (!suppressed.empty()) std::cout << ", " << suppressed.size() << " baselined";
    std::cout << ")\n";
    return 0;
  }
  std::cerr << "midway-lint: " << active.size() << " finding(s)";
  if (!suppressed.empty()) std::cerr << " (" << suppressed.size() << " baselined)";
  std::cerr << "\n";
  return 1;
}
