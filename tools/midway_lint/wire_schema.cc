#include "tools/midway_lint/wire_schema.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>

namespace midway_lint {

namespace {

std::string Squeeze(const std::string& s) {
  std::string out;
  bool ws = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      ws = true;
      continue;
    }
    if (ws && !out.empty()) out.push_back(' ');
    ws = false;
    out.push_back(c);
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Code text of a scope's body: everything strictly between the '{' and '}'.
std::string ScopeBody(const SourceFile& file, const Scope& s) {
  std::string out;
  for (int ln = s.open.line; ln <= std::min(s.close.line, file.line_count()); ++ln) {
    const std::string& code = file.line(ln).code;
    size_t from = 0;
    size_t to = code.size();
    if (ln == s.open.line) from = static_cast<size_t>(s.open.col);  // past the '{'
    if (ln == s.close.line && s.close.col >= 1) {
      to = std::min(to, static_cast<size_t>(s.close.col - 1));
    }
    if (from < to) out.append(code, from, to - from);
    out.push_back('\n');
  }
  return out;
}

}  // namespace

std::string WireSchema::Canonical() const {
  std::vector<std::string> sorted = entries;
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream out;
  out << "wire_version " << wire_version << "\n";
  for (const std::string& e : sorted) out << e << "\n";
  return out.str();
}

void ExtractWireSchema(const SourceFile& file, WireSchema* schema) {
  static const std::regex kConstRe(
      R"(inline\s+constexpr\s+[\w:]+\s+(k\w+)\s*=\s*([^;]+);)");
  static const std::regex kStructRe(R"((?:^|[^\w])struct\s+(\w+)$)");
  static const std::regex kEnumRe(R"((?:^|[^\w])enum\s+(?:class\s+|struct\s+)?(\w+)\s*(?::\s*[\w:]+)?$)");
  static const std::regex kFieldRe(
      R"(^\s*([A-Za-z_][\w:<>,\s\*&]*[\w>\*&])\s+([A-Za-z_]\w*)\s*(?:=[^;]*)?;)");

  // Namespace-level constants — and kWireVersion, which is lifted out of the entry list so
  // a version bump is not itself "layout drift".
  for (int ln = 1; ln <= file.line_count(); ++ln) {
    const std::string& code = file.line(ln).code;
    std::smatch m;
    if (std::regex_search(code, m, kConstRe)) {
      int sc = file.ScopeAt({ln, static_cast<int>(m.position(1)) + 1});
      ScopeKind k = file.scopes()[static_cast<size_t>(sc)].kind;
      if (k != ScopeKind::kNamespace && k != ScopeKind::kFile) continue;
      std::string name = m[1].str();
      std::string value = Trim(Squeeze(m[2].str()));
      if (name == "kWireVersion") {
        schema->wire_version = static_cast<int>(std::strtol(value.c_str(), nullptr, 0));
        schema->version_line = ln;
      } else {
        schema->entries.push_back("const " + name + " " + value);
      }
    }
  }

  for (const Scope& s : file.scopes()) {
    if (s.kind != ScopeKind::kType) continue;
    ScopeKind parent_kind = file.scopes()[static_cast<size_t>(std::max(s.parent, 0))].kind;
    if (parent_kind != ScopeKind::kNamespace && parent_kind != ScopeKind::kFile) {
      continue;  // nested helper types (e.g. WireWriter::ExtSeg) are not wire layout
    }
    std::smatch m;
    // Strip a trailing base/underlying-type clause for matching ("struct Foo", "enum class
    // Bar : uint8_t").
    const std::string header = s.header;
    if (std::regex_search(header, m, kEnumRe)) {
      const std::string name = m[1].str();
      std::string body = ScopeBody(file, s);
      for (char& c : body) {
        if (c == '\n') c = ' ';
      }
      std::ostringstream entry;
      entry << "enum " << name;
      long next_value = 0;
      std::stringstream items(body);
      std::string item;
      while (std::getline(items, item, ',')) {
        item = Trim(Squeeze(item));
        if (item.empty()) continue;
        size_t eq = item.find('=');
        std::string ename = Trim(eq == std::string::npos ? item : item.substr(0, eq));
        if (ename.empty()) continue;
        long value = next_value;
        if (eq != std::string::npos) {
          value = std::strtol(Trim(item.substr(eq + 1)).c_str(), nullptr, 0);
        }
        next_value = value + 1;
        entry << " " << ename << "=" << value;
      }
      schema->entries.push_back(entry.str());
    } else if (std::regex_search(header, m, kStructRe)) {
      const std::string name = m[1].str();
      std::ostringstream entry;
      entry << "struct " << name;
      for (int ln = s.open.line; ln <= std::min(s.close.line, file.line_count()); ++ln) {
        const std::string& code = file.line(ln).code;
        // Fields are direct children of the struct scope; skip method bodies and nested
        // types by requiring the line to start inside this very scope.
        int indent = 1;
        while (indent <= static_cast<int>(code.size()) &&
               std::isspace(static_cast<unsigned char>(code[static_cast<size_t>(indent - 1)]))) {
          ++indent;
        }
        if (file.ScopeAt({ln, indent}) != s.id) continue;
        if (code.find("static") != std::string::npos) continue;   // constants, not layout
        if (code.find("friend") != std::string::npos) continue;   // operator==
        if (code.find("using") != std::string::npos) continue;
        std::smatch fm;
        if (!std::regex_search(code, fm, kFieldRe)) continue;
        std::string type = Trim(Squeeze(fm[1].str()));
        // Reject matches where the "type" swallowed a paren (function decls/calls).
        if (type.find('(') != std::string::npos) continue;
        entry << " " << fm[2].str() << ":" << type;
      }
      schema->entries.push_back(entry.str());
    }
  }
}

bool LoadGolden(const std::string& path, WireSchema* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  bool saw_version = false;
  while (std::getline(in, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("wire_version ", 0) == 0) {
      out->wire_version = static_cast<int>(std::strtol(line.c_str() + 13, nullptr, 10));
      saw_version = true;
      continue;
    }
    out->entries.push_back(line);
  }
  return saw_version;
}

bool WriteGolden(const std::string& path, const WireSchema& schema) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# midway-lint wire schema golden — canonical field layout of the protocol\n"
         "# messages in src/net/wire.h and src/core/protocol.h. DO NOT EDIT BY HAND.\n"
         "# After an intentional wire change, bump kWireVersion in src/net/wire.h and\n"
         "# regenerate with:  scripts/lint.sh --update-wire-golden   (docs/ANALYSIS.md §R5)\n";
  out << schema.Canonical();
  return static_cast<bool>(out);
}

std::string SchemaDiff(const WireSchema& golden, const WireSchema& current) {
  std::vector<std::string> g = golden.entries;
  std::vector<std::string> c = current.entries;
  std::sort(g.begin(), g.end());
  std::sort(c.begin(), c.end());
  size_t i = 0, j = 0;
  while (i < g.size() || j < c.size()) {
    if (i >= g.size()) return "added: " + c[j];
    if (j >= c.size()) return "removed: " + g[i];
    if (g[i] == c[j]) {
      ++i;
      ++j;
      continue;
    }
    // Same declaration renamed/reshaped? Align by the "kind name" prefix when possible.
    auto key = [](const std::string& s) {
      size_t first = s.find(' ');
      size_t second = s.find(' ', first == std::string::npos ? s.size() : first + 1);
      return s.substr(0, second);
    };
    if (key(g[i]) == key(c[j])) {
      return "changed: " + key(g[i]) + "\n  golden:  " + g[i] + "\n  current: " + c[j];
    }
    if (g[i] < c[j]) return "removed: " + g[i];
    return "added: " + c[j];
  }
  return "";
}

}  // namespace midway_lint
