#include "tools/midway_lint/source_model.h"

#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

namespace midway_lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Collapses runs of whitespace so header classification regexes stay simple.
std::string Squeeze(const std::string& s) {
  std::string out;
  bool ws = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      ws = true;
      continue;
    }
    if (ws && !out.empty()) out.push_back(' ');
    ws = false;
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool SourceFile::Load(const std::string& path) {
  path_ = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error_ = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  Lex(ss.str());
  BuildScopes();
  return true;
}

const Line& SourceFile::line(int n) const {
  static const Line kEmpty;
  if (n < 1 || n > static_cast<int>(lines_.size())) return kEmpty;
  return lines_[static_cast<size_t>(n - 1)];
}

// One pass over the text, classifying every character as code, comment, or literal
// contents. Handles //, /* */, "..." with escapes, '...' char literals (but not digit
// separators like 1'000'000), and R"delim(...)delim" raw strings.
void SourceFile::Lex(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the closing )delim" to look for

  Line cur;
  auto flush = [&] {
    lines_.push_back(cur);
    cur = Line{};
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\r') continue;
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush();
      continue;
    }
    cur.raw.push_back(c);
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          cur.code.append("  ");
          cur.raw.push_back(next);
          ++i;
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          cur.code.append("  ");
          cur.raw.push_back(next);
          ++i;
          break;
        }
        if (c == '"') {
          // R"delim( — raw string; only if R directly precedes and is not part of an
          // identifier (u8R etc. are close enough to ignore for this codebase).
          if (!cur.code.empty() && cur.code.back() == 'R' &&
              (cur.code.size() < 2 || !IsIdentChar(cur.code[cur.code.size() - 2]))) {
            size_t p = i + 1;
            std::string delim;
            while (p < text.size() && text[p] != '(' && text[p] != '\n') {
              delim.push_back(text[p]);
              ++p;
            }
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          cur.code.push_back('"');
          break;
        }
        if (c == '\'') {
          // A char literal only if not a digit separator (1'000) and not part of an
          // identifier-adjacent token.
          if (!cur.code.empty() && IsIdentChar(cur.code.back())) {
            cur.code.push_back(' ');  // digit separator / suffix: neither code nor literal
            break;
          }
          state = State::kChar;
          cur.code.push_back('\'');
          break;
        }
        cur.code.push_back(c);
        break;
      }
      case State::kLineComment:
        cur.comment.push_back(c);
        cur.code.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          cur.code.append("  ");
          cur.raw.push_back(next);
          ++i;
        } else {
          cur.comment.push_back(c);
          cur.code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          cur.code.append("  ");
          cur.raw.push_back(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          cur.code.push_back('"');
        } else {
          cur.code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          cur.code.append("  ");
          cur.raw.push_back(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          cur.code.push_back('\'');
        } else {
          cur.code.push_back(' ');
        }
        break;
      case State::kRawString: {
        // Blank until the matching )delim" shows up starting at this character.
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 1; k < raw_delim.size(); ++k) {
            if (i + k < text.size() && text[i + k] != '\n') cur.raw.push_back(text[i + k]);
          }
          cur.code.append(raw_delim.size(), ' ');
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          cur.code.push_back(' ');
        }
        break;
      }
    }
  }
  if (!cur.raw.empty() || !cur.code.empty()) flush();
}

void SourceFile::BuildScopes() {
  scopes_.clear();
  Scope root;
  root.id = 0;
  root.parent = -1;
  root.kind = ScopeKind::kFile;
  root.open = {0, 0};
  root.close = {line_count() + 1, 0};
  scopes_.push_back(root);

  std::vector<int> stack{0};

  static const std::regex kNamespaceRe(R"((^|[^\w])(namespace)([^\w]|$))");
  static const std::regex kExternRe(R"(extern "C")");  // header code has "" blanked; harmless
  static const std::regex kTypeRe(R"((^|[^\w])(class|struct|union|enum)([^\w]|$))");
  static const std::regex kControlRe(
      R"((^|[^\w])(if|for|while|switch|do|try|catch|else)([^\w]|$))");

  for (int ln = 1; ln <= line_count(); ++ln) {
    const std::string& code = lines_[static_cast<size_t>(ln - 1)].code;
    for (size_t ci = 0; ci < code.size(); ++ci) {
      char c = code[ci];
      if (c == '{') {
        Scope s;
        s.id = static_cast<int>(scopes_.size());
        s.parent = stack.back();
        s.open = {ln, static_cast<int>(ci + 1)};
        s.close = {line_count() + 1, 0};
        // Header: code on this line before the brace, plus up to two prior lines for the
        // common "signature on its own line(s), brace at the end" layout.
        std::string header = code.substr(0, ci);
        for (int back = 1; back <= 2 && ln - back >= 1; ++back) {
          header = lines_[static_cast<size_t>(ln - back - 1) + 0].code + " " + header;
        }
        s.header = Squeeze(header);

        // Classification. Order matters: "enum class" must hit kType before kControl ever
        // sees it; an initializer (= {...}) beats everything.
        const std::string& h = s.header;
        std::string tail = h.size() > 160 ? h.substr(h.size() - 160) : h;
        bool after_equals = false;
        for (size_t k = tail.size(); k-- > 0;) {
          char hc = tail[k];
          if (std::isspace(static_cast<unsigned char>(hc))) continue;
          if (hc == '=' || hc == ',' || hc == '(' || hc == '{') after_equals = true;
          break;
        }
        // A type/namespace keyword only introduces this scope if it appears *after* the
        // last ')' in the header — otherwise the keyword belongs to an earlier declaration
        // caught by the 2-line lookback (e.g. a function prototype above "class Foo {").
        const size_t last_paren = tail.rfind(')');
        auto introduces = [&](const std::regex& re) {
          auto begin = std::sregex_iterator(tail.begin(), tail.end(), re);
          size_t last_at = std::string::npos;
          for (auto it = begin; it != std::sregex_iterator(); ++it) {
            last_at = static_cast<size_t>(it->position(2));
          }
          if (last_at == std::string::npos) return false;
          return last_paren == std::string::npos || last_at > last_paren;
        };
        if (after_equals) {
          s.kind = ScopeKind::kInit;
        } else if (introduces(kNamespaceRe) || std::regex_search(tail, kExternRe)) {
          s.kind = ScopeKind::kNamespace;
        } else if (introduces(kTypeRe)) {
          s.kind = ScopeKind::kType;
        } else {
          // Distinguish control blocks, function bodies, lambdas, and bare blocks by what
          // sits right before the '{'.
          std::smatch m;
          bool control = false;
          // Find the identifier immediately preceding the matching '(' of a trailing ')'.
          std::string before;
          size_t close_paren = tail.find_last_of(')');
          if (close_paren != std::string::npos) {
            int depth = 0;
            size_t open_paren = std::string::npos;
            for (size_t k = close_paren + 1; k-- > 0;) {
              if (tail[k] == ')') ++depth;
              if (tail[k] == '(') {
                --depth;
                if (depth == 0) {
                  open_paren = k;
                  break;
                }
              }
            }
            if (open_paren != std::string::npos) {
              before = Squeeze(tail.substr(0, open_paren));
              std::string name;
              size_t e = before.size();
              while (e > 0 && std::isspace(static_cast<unsigned char>(before[e - 1]))) --e;
              size_t b = e;
              while (b > 0 && IsIdentChar(before[b - 1])) --b;
              name = before.substr(b, e - b);
              if (name == "if" || name == "for" || name == "while" || name == "switch" ||
                  name == "catch" || name == "constexpr") {
                control = true;
              } else if (!name.empty()) {
                s.kind = ScopeKind::kFunction;
                s.name = name;
              }
            }
          }
          if (control) {
            s.kind = ScopeKind::kControl;
          } else if (s.kind != ScopeKind::kFunction) {
            if (std::regex_search(tail, m, kControlRe)) {
              s.kind = ScopeKind::kControl;  // do { / else { / try {
            } else if (tail.size() >= 1 && (tail.rfind(']') != std::string::npos &&
                                            tail.rfind(']') + 8 > tail.size())) {
              s.kind = ScopeKind::kFunction;  // lambda: [..] { or [..](..) mutable {
              s.name = "<lambda>";
            } else {
              s.kind = ScopeKind::kControl;  // bare block
            }
          }
        }
        stack.push_back(s.id);
        scopes_.push_back(s);
      } else if (c == '}') {
        if (stack.size() > 1) {
          scopes_[static_cast<size_t>(stack.back())].close = {ln, static_cast<int>(ci + 1)};
          stack.pop_back();
        }
      }
    }
  }
}

int SourceFile::ScopeAt(Pos pos) const {
  int best = 0;
  for (const Scope& s : scopes_) {
    if (s.id == 0) continue;
    if (s.open < pos && pos <= s.close) {
      // Innermost wins: scopes are pushed in open order, so a later matching scope that
      // also contains pos is nested deeper (or a sibling that doesn't contain it).
      if (IsAncestorOrSelf(best, s.id)) best = s.id;
    }
  }
  return best;
}

bool SourceFile::IsAncestorOrSelf(int outer, int inner) const {
  while (inner >= 0) {
    if (inner == outer) return true;
    inner = scopes_[static_cast<size_t>(inner)].parent;
  }
  return false;
}

int SourceFile::EnclosingFunction(int scope) const {
  int best = -1;
  int cur = scope;
  while (cur > 0) {
    const Scope& s = scopes_[static_cast<size_t>(cur)];
    if (s.kind == ScopeKind::kNamespace || s.kind == ScopeKind::kType ||
        s.kind == ScopeKind::kFile) {
      break;  // crossing a non-function boundary: whatever we found below is the function
    }
    if (s.kind == ScopeKind::kFunction) best = cur;
    cur = s.parent;
  }
  return best;
}

std::vector<Pos> SourceFile::FindCode(const std::string& token, bool identifier_boundary) const {
  std::vector<Pos> out;
  for (int ln = 1; ln <= line_count(); ++ln) {
    const std::string& code = lines_[static_cast<size_t>(ln - 1)].code;
    size_t from = 0;
    while (true) {
      size_t at = code.find(token, from);
      if (at == std::string::npos) break;
      bool ok = true;
      if (identifier_boundary) {
        if (at > 0 && IsIdentChar(code[at - 1]) && IsIdentChar(token.front())) ok = false;
        size_t end = at + token.size();
        if (ok && end < code.size() && IsIdentChar(code[end]) && IsIdentChar(token.back())) {
          ok = false;
        }
      }
      if (ok) out.push_back({ln, static_cast<int>(at + 1)});
      from = at + 1;
    }
  }
  return out;
}

std::vector<int> SourceFile::FindComment(const std::string& needle) const {
  std::vector<int> out;
  for (int ln = 1; ln <= line_count(); ++ln) {
    if (lines_[static_cast<size_t>(ln - 1)].comment.find(needle) != std::string::npos) {
      out.push_back(ln);
    }
  }
  return out;
}

}  // namespace midway_lint
