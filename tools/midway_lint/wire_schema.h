// R5 wire-schema drift detection: extracts the wire-relevant declarations from
// src/net/wire.h and src/core/protocol.h into a canonical, diffable text fingerprint
// ("schema"), and compares it against the checked-in tools/wire_schema.golden. A layout
// change without a kWireVersion bump — or a bump without regenerating the golden — is a
// build failure, so silent peer-incompatibility can't ship (docs/ANALYSIS.md §R5).
#ifndef MIDWAY_TOOLS_MIDWAY_LINT_WIRE_SCHEMA_H_
#define MIDWAY_TOOLS_MIDWAY_LINT_WIRE_SCHEMA_H_

#include <string>
#include <vector>

#include "tools/midway_lint/source_model.h"

namespace midway_lint {

struct WireSchema {
  int wire_version = -1;       // parsed kWireVersion; -1 if not found
  int version_line = 0;        // line of the kWireVersion declaration (for diagnostics)
  std::vector<std::string> entries;  // canonical "const ..." / "enum ..." / "struct ..."

  // One canonical line per entry, sorted sections, stable across whitespace/comment edits.
  std::string Canonical() const;
};

// Parses the wire-relevant declarations out of an already-lexed header: namespace-level
// `struct` field layouts, `enum class` enumerator values, and `inline constexpr` integer
// constants whose names start with kWire. Appends into `schema`.
void ExtractWireSchema(const SourceFile& file, WireSchema* schema);

// Golden file round-trip. The golden is the canonical text plus a header comment; Load
// returns false if the file is missing or unparseable.
bool LoadGolden(const std::string& path, WireSchema* out);
bool WriteGolden(const std::string& path, const WireSchema& schema);

// First line-level difference between two canonical schemas ("" if identical).
std::string SchemaDiff(const WireSchema& golden, const WireSchema& current);

}  // namespace midway_lint

#endif  // MIDWAY_TOOLS_MIDWAY_LINT_WIRE_SCHEMA_H_
