// The protocol-discipline rules. Each rule is an independently testable function over the
// scanned tree; rule ids are stable strings asserted by tests/lint and listed in
// docs/ANALYSIS.md. A rule whose inputs are absent from the tree (e.g. a fixture corpus
// with no counters.h) reports nothing — fixtures opt into exactly the rules they exercise.
#ifndef MIDWAY_TOOLS_MIDWAY_LINT_RULES_H_
#define MIDWAY_TOOLS_MIDWAY_LINT_RULES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tools/midway_lint/source_model.h"

namespace midway_lint {

inline constexpr const char* kRuleR1 = "R1-init-phase";
inline constexpr const char* kRuleR2 = "R2-no-node0";
inline constexpr const char* kRuleR3 = "R3-kdead-verdict";
inline constexpr const char* kRuleR4 = "R4-trace-guard";
inline constexpr const char* kRuleR5 = "R5-wire-schema";
inline constexpr const char* kRuleR6 = "R6-counter-xmacro";

struct Finding {
  std::string file;  // root-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  }
};

// The scanned tree plus a lazy parse cache, shared by every rule.
class LintTree {
 public:
  LintTree(std::string root, std::vector<std::string> files);

  const std::string& root() const { return root_; }
  // Root-relative paths of every scanned file, sorted.
  const std::vector<std::string>& files() const { return files_; }
  // Root-relative paths matching a directory prefix ("src/apps/") or exact path.
  std::vector<std::string> Under(const std::string& prefix) const;
  bool Has(const std::string& rel) const;
  // Lazily loads and lexes; returns nullptr if the file is not part of the tree or
  // unreadable.
  const SourceFile* Get(const std::string& rel) const;

 private:
  std::string root_;
  std::vector<std::string> files_;
  mutable std::map<std::string, std::unique_ptr<SourceFile>> cache_;
};

// R1 — raw_mutable() discipline (scope-aware successor of the lint.sh awk window).
void RunR1(const LintTree& tree, std::vector<Finding>* findings);
// R2 — no node-0 pinning / modulo home assignment in coordination paths.
void RunR2(const LintTree& tree, std::vector<Finding>* findings);
// R3 — NodeHealth::kDead is detector suspicion, not membership truth.
void RunR3(const LintTree& tree, std::vector<Finding>* findings);
// R4 — TraceBuffer/Span emissions in Runtime must sit in a mu_-guarded scope.
void RunR4(const LintTree& tree, std::vector<Finding>* findings);
// R5 — wire-schema drift vs tools/wire_schema.golden. `golden_path` is absolute or
// root-relative; update=true rewrites the golden instead of reporting drift.
void RunR5(const LintTree& tree, const std::string& golden_path, bool update,
           std::vector<Finding>* findings);
// R6 — MIDWAY_COUNTER_FIELDS X-macro consistency.
void RunR6(const LintTree& tree, std::vector<Finding>* findings);

}  // namespace midway_lint

#endif  // MIDWAY_TOOLS_MIDWAY_LINT_RULES_H_
