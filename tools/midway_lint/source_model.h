// midway-lint source model: a comment/string-aware line view of a C++ translation unit plus
// a brace-scope tree. This is deliberately NOT a C++ parser — the protocol-discipline rules
// (docs/ANALYSIS.md) only need to know (a) what is code vs comment, (b) how brace scopes
// nest, and (c) roughly what kind of scope each brace opens. That keeps the analyzer
// dependency-free (no LLVM/libclang), so it builds wherever CI does.
#ifndef MIDWAY_TOOLS_MIDWAY_LINT_SOURCE_MODEL_H_
#define MIDWAY_TOOLS_MIDWAY_LINT_SOURCE_MODEL_H_

#include <string>
#include <vector>

namespace midway_lint {

// A position in a file; line and column are 1-based.
struct Pos {
  int line = 0;
  int col = 0;
  friend bool operator<(const Pos& a, const Pos& b) {
    return a.line != b.line ? a.line < b.line : a.col < b.col;
  }
  friend bool operator<=(const Pos& a, const Pos& b) { return !(b < a); }
};

enum class ScopeKind {
  kFile,       // synthetic root covering the whole file
  kNamespace,  // namespace X { ... } / extern "C" { ... }
  kType,       // class/struct/union/enum body
  kFunction,   // a function (or lambda) body
  kControl,    // if/for/while/switch/do/try/catch or a bare block
  kInit,       // brace initializer ( = {...}, T{...} ) — conservative catch-all
};

struct Scope {
  int id = 0;
  int parent = -1;  // index into SourceFile::scopes; -1 for the root
  ScopeKind kind = ScopeKind::kControl;
  Pos open;              // position of '{'
  Pos close;             // position of '}' (end of file if unbalanced)
  std::string header;    // code text preceding '{' (same line + up to 2 prior lines)
  std::string name;      // best-effort function name for kFunction ("" otherwise)
};

struct Line {
  std::string raw;      // original text
  std::string code;     // comments, string and char literal *contents* blanked with spaces
  std::string comment;  // concatenated comment text on this line (without the // or /* */)
};

class SourceFile {
 public:
  // Loads and lexes `path`. Returns false (and sets error()) if the file cannot be read.
  bool Load(const std::string& path);

  const std::string& path() const { return path_; }
  const std::string& error() const { return error_; }
  int line_count() const { return static_cast<int>(lines_.size()); }
  // 1-based accessors; out-of-range returns an empty line.
  const Line& line(int n) const;
  const std::vector<Scope>& scopes() const { return scopes_; }

  // Innermost scope containing `pos` (always ≥ 0: the file root contains everything).
  int ScopeAt(Pos pos) const;
  // True if `outer` is `inner` or one of its ancestors.
  bool IsAncestorOrSelf(int outer, int inner) const;
  // Walks up from `scope` to the outermost enclosing function body: the highest kFunction
  // scope whose chain from `scope` crosses no namespace/type boundary below it. Returns -1
  // if `scope` is not inside any function.
  int EnclosingFunction(int scope) const;

  // All (line, col) occurrences of `token` in code text (comments/strings excluded).
  // `token` is matched literally; if identifier_boundary is true the match must not be
  // preceded/followed by an identifier character.
  std::vector<Pos> FindCode(const std::string& token, bool identifier_boundary = true) const;
  // Lines whose comment text contains `needle`.
  std::vector<int> FindComment(const std::string& needle) const;

 private:
  void Lex(const std::string& text);
  void BuildScopes();

  std::string path_;
  std::string error_;
  std::vector<Line> lines_;
  std::vector<Scope> scopes_;
};

}  // namespace midway_lint

#endif  // MIDWAY_TOOLS_MIDWAY_LINT_SOURCE_MODEL_H_
