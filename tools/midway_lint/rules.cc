#include "tools/midway_lint/rules.h"

#include <algorithm>
#include <regex>
#include <set>

#include "tools/midway_lint/wire_schema.h"

namespace midway_lint {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsCppSource(const std::string& p) {
  return EndsWith(p, ".cc") || EndsWith(p, ".h") || EndsWith(p, ".cpp");
}

}  // namespace

LintTree::LintTree(std::string root, std::vector<std::string> files)
    : root_(std::move(root)), files_(std::move(files)) {
  std::sort(files_.begin(), files_.end());
}

std::vector<std::string> LintTree::Under(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const std::string& f : files_) {
    if (f == prefix || f.rfind(prefix, 0) == 0) out.push_back(f);
  }
  return out;
}

bool LintTree::Has(const std::string& rel) const {
  return std::binary_search(files_.begin(), files_.end(), rel);
}

const SourceFile* LintTree::Get(const std::string& rel) const {
  auto it = cache_.find(rel);
  if (it != cache_.end()) return it->second->error().empty() ? it->second.get() : nullptr;
  if (!Has(rel)) return nullptr;
  auto file = std::make_unique<SourceFile>();
  file->Load(root_ + "/" + rel);
  const SourceFile* out = file->error().empty() ? file.get() : nullptr;
  cache_.emplace(rel, std::move(file));
  return out;
}

// --- R1: raw_mutable() only inside `// init-phase` scopes, before BeginParallel ----------
//
// raw_mutable() bypasses write instrumentation, so a store through it is invisible to the
// consistency protocol and the EC checker. It is legal only for SPMD initialization before
// BeginParallel, inside a scope annotated with an `// init-phase` comment. Scope-aware: the
// annotation marks its innermost brace scope from the comment line onward (nested scopes
// included); an annotation at file or namespace level is ineffective by design, so a single
// comment cannot bless a whole translation unit. A use lexically after a BeginParallel()
// call in an enclosing scope is flagged even when annotated — the annotation would be a lie.
void RunR1(const LintTree& tree, std::vector<Finding>* findings) {
  std::vector<std::string> files;
  for (const char* prefix : {"src/apps/", "examples/", "bench/"}) {
    for (const std::string& f : tree.Under(prefix)) {
      if (IsCppSource(f)) files.push_back(f);
    }
  }
  for (const std::string& rel : files) {
    const SourceFile* src = tree.Get(rel);
    if (!src) continue;

    struct Mark {
      Pos pos;
      int scope;
    };
    std::vector<Mark> marks;
    for (int ln : src->FindComment("init-phase")) {
      int col = std::max(1, static_cast<int>(src->line(ln).code.size()));
      Mark m{{ln, col}, 0};
      m.scope = src->ScopeAt(m.pos);
      ScopeKind k = src->scopes()[static_cast<size_t>(m.scope)].kind;
      if (k == ScopeKind::kFile || k == ScopeKind::kNamespace) continue;  // ineffective
      marks.push_back(m);
    }
    std::vector<Pos> begins = src->FindCode("BeginParallel");

    for (const Pos& use : src->FindCode("raw_mutable(", /*identifier_boundary=*/false)) {
      int use_scope = src->ScopeAt(use);

      bool after_begin = false;
      for (const Pos& b : begins) {
        if (!(b < use)) continue;
        int bs = src->ScopeAt(b);
        ScopeKind k = src->scopes()[static_cast<size_t>(bs)].kind;
        if (k == ScopeKind::kFile || k == ScopeKind::kNamespace || k == ScopeKind::kType) {
          continue;  // a declaration, not a call site
        }
        if (src->IsAncestorOrSelf(bs, use_scope)) {
          after_begin = true;
          break;
        }
      }
      if (after_begin) {
        findings->push_back({rel, use.line, kRuleR1,
                             "raw_mutable() after BeginParallel in the same scope — raw "
                             "stores bypass write detection once the protocol is live; use "
                             "the instrumented Set()/operator[] accessors"});
        continue;
      }

      bool annotated = false;
      for (const Mark& m : marks) {
        if (m.pos.line <= use.line && src->IsAncestorOrSelf(m.scope, use_scope)) {
          annotated = true;
          break;
        }
      }
      if (!annotated) {
        findings->push_back({rel, use.line, kRuleR1,
                             "raw_mutable() outside an `// init-phase` annotated scope — "
                             "annotate legitimate pre-BeginParallel SPMD initialization, or "
                             "use the instrumented Set()/operator[] accessors"});
      }
    }
  }
}

// --- R2: no node-0 pinning / modulo home assignment in coordination paths ----------------
//
// Lock homes and recovery coordination are sharded by consistent hashing
// (Runtime::HomeOf / CoordinatorOf, src/core/shard.h), and barriers run over a k-ary
// reduction/broadcast tree rooted at the lowest live id (docs/INTERNALS.md §11). A
// hard-coded node-0 check, a modulo home assignment, or a revived BarrierManager()-style
// fixed role silently re-centralizes the protocol. No documented exceptions remain.
void RunR2(const LintTree& tree, std::vector<Finding>* findings) {
  static const std::regex kNode0Re(
      R"(self_\s*==\s*0\b|SendTo\(\s*0\s*,|coordinator\s*=\s*0\s*;)");
  static const std::regex kModuloRe(R"((lock|lock_id|requester)\s*%\s*nprocs)");

  // The barrier manager was the last pinned role; its name coming back anywhere in src/
  // means someone re-centralized the barrier instead of extending the tree.
  for (const std::string& rel : tree.Under("src/")) {
    if (!IsCppSource(rel)) continue;
    const SourceFile* src = tree.Get(rel);
    if (!src) continue;
    for (const Pos& pos : src->FindCode("BarrierManager")) {
      findings->push_back({rel, pos.line, kRuleR2,
                           "BarrierManager-style pinned barrier role — barriers are "
                           "decentralized over the k-ary tree (BarrierRootLocked/"
                           "BarrierParentLocked, src/core/runtime.h); do not re-introduce "
                           "a fixed manager node"});
    }
  }

  if (const SourceFile* src = tree.Get("src/core/runtime_recovery.cc")) {
    for (int ln = 1; ln <= src->line_count(); ++ln) {
      if (std::regex_search(src->line(ln).code, kNode0Re)) {
        findings->push_back({"src/core/runtime_recovery.cc", ln, kRuleR2,
                             "hard-coded node-0 coordination — use "
                             "RecoveryCoordinatorLocked()/CoordinatorOf() (consistent "
                             "hashing, src/core/shard.h)"});
      }
    }
  }
  for (const char* rel :
       {"src/core/runtime.h", "src/core/runtime.cc", "src/core/protocol.cc"}) {
    const SourceFile* src = tree.Get(rel);
    if (!src) continue;
    for (int ln = 1; ln <= src->line_count(); ++ln) {
      if (std::regex_search(src->line(ln).code, kModuloRe)) {
        findings->push_back({rel, ln, kRuleR2,
                             "modulo lock-home assignment — use Runtime::HomeOf() "
                             "(consistent hashing, src/core/shard.h)"});
      }
    }
  }
}

// --- R3: NodeHealth::kDead is a hint, not a verdict --------------------------------------
//
// A detector Dead reading is one node's local suspicion; membership truth is the committed
// epoch state (node_dead_/dead_pending_), reached only through the recovery module's
// verdict path — which is also what lets a wrongly-buried node protest its way back in
// (docs/INTERNALS.md §7). Allowed: the detector itself and the recovery module.
void RunR3(const LintTree& tree, std::vector<Finding>* findings) {
  static const std::set<std::string> kAllowed = {"src/sync/failure_detector.h",
                                                 "src/core/runtime_recovery.cc"};
  for (const std::string& rel : tree.Under("src/")) {
    if (!IsCppSource(rel) || kAllowed.count(rel)) continue;
    const SourceFile* src = tree.Get(rel);
    if (!src) continue;
    for (const Pos& pos : src->FindCode("NodeHealth::kDead")) {
      findings->push_back({rel, pos.line, kRuleR3,
                           "direct NodeHealth::kDead check outside the failure detector "
                           "and the recovery module — branch on committed membership "
                           "(node_dead_/dead_pending_ via the recovery verdict path) "
                           "instead of raw detector suspicion"});
    }
  }
}

// --- R4: trace emission / Span end in Runtime must be mu_-guarded ------------------------
//
// TraceBuffer is not thread safe; every Record/RecordSpan — including the ones fired by a
// Span destructor or End() — must hold the owning Runtime's mu_ (src/core/trace.h). A site
// passes if (a) a lock_guard/scoped_lock/unique_lock on mu_ was taken earlier in an
// enclosing scope of the same function, (b) the enclosing function's name ends in "Locked"
// (the codebase's caller-holds-mu_ convention), or (c) a `holds mu_` comment annotates the
// function (body, or up to 4 lines above its opening brace).
void RunR4(const LintTree& tree, std::vector<Finding>* findings) {
  static const std::regex kGuardRe(
      R"((lock_guard|scoped_lock|unique_lock)\b[^;]*\(\s*mu_\s*[,)])");
  static const std::regex kSpanStartRe(R"(obs::Span\s+(\w+)\s*[({])");
  static const std::regex kSpanEmplaceRe(R"(([A-Za-z_]\w*span\w*)\s*\.\s*emplace\s*\()");
  static const std::regex kSpanEndRe(
      R"(([A-Za-z_]\w*span\w*)\s*(?:\.|->)\s*(End|reset)\s*\()");

  for (const char* rel : {"src/core/runtime.cc", "src/core/runtime_recovery.cc"}) {
    const SourceFile* src = tree.Get(rel);
    if (!src) continue;

    struct Site {
      Pos pos;
      std::string what;
    };
    std::vector<Site> sites;
    for (const Pos& p : src->FindCode("trace_.Record(", false)) {
      sites.push_back({p, "trace_.Record()"});
    }
    for (const Pos& p : src->FindCode("trace_.RecordSpan(", false)) {
      sites.push_back({p, "trace_.RecordSpan()"});
    }
    std::vector<Pos> guards;
    for (int ln = 1; ln <= src->line_count(); ++ln) {
      const std::string& code = src->line(ln).code;
      std::smatch m;
      if (std::regex_search(code, m, kGuardRe)) {
        guards.push_back({ln, static_cast<int>(m.position(0)) + 1});
      }
      if (std::regex_search(code, m, kSpanStartRe)) {
        sites.push_back({{ln, static_cast<int>(m.position(0)) + 1},
                         "span `" + m[1].str() + "` (records at scope exit)"});
      }
      if (std::regex_search(code, m, kSpanEmplaceRe)) {
        sites.push_back({{ln, static_cast<int>(m.position(0)) + 1},
                         "span `" + m[1].str() + "` emplace"});
      }
      if (std::regex_search(code, m, kSpanEndRe)) {
        sites.push_back({{ln, static_cast<int>(m.position(0)) + 1},
                         "span `" + m[1].str() + "`." + m[2].str() + "()"});
      }
    }

    std::vector<int> annotations = src->FindComment("holds mu_");

    for (const Site& site : sites) {
      int ss = src->ScopeAt(site.pos);
      int fn = src->EnclosingFunction(ss);
      if (fn >= 0 && EndsWith(src->scopes()[static_cast<size_t>(fn)].name, "Locked")) {
        continue;
      }
      bool guarded = false;
      for (const Pos& g : guards) {
        if (!(g < site.pos)) continue;
        int gs = src->ScopeAt(g);
        if (src->IsAncestorOrSelf(gs, ss) && src->EnclosingFunction(gs) == fn && fn >= 0) {
          guarded = true;
          break;
        }
      }
      if (guarded) continue;
      if (fn >= 0) {
        int fn_open = src->scopes()[static_cast<size_t>(fn)].open.line;
        bool annotated = false;
        for (int ln : annotations) {
          if (ln >= fn_open - 4 && ln <= site.pos.line) {
            annotated = true;
            break;
          }
        }
        if (annotated) continue;
      }
      findings->push_back({rel, site.pos.line, kRuleR4,
                           site.what +
                               " without mu_ held — TraceBuffer requires the runtime mutex "
                               "(src/core/trace.h); take a lock_guard on mu_ or annotate "
                               "the caller-held contract with `// holds mu_`"});
    }
  }
}

// --- R5: wire-schema drift vs tools/wire_schema.golden -----------------------------------
void RunR5(const LintTree& tree, const std::string& golden_path, bool update,
           std::vector<Finding>* findings) {
  const char* kWireHeader = "src/net/wire.h";
  const char* kProtocolHeader = "src/core/protocol.h";
  if (!tree.Has(kWireHeader) && !tree.Has(kProtocolHeader)) return;  // fixture without R5

  WireSchema current;
  for (const char* rel : {kWireHeader, kProtocolHeader}) {
    if (const SourceFile* src = tree.Get(rel)) ExtractWireSchema(*src, &current);
  }
  if (current.wire_version < 0) {
    findings->push_back({kWireHeader, 1, kRuleR5,
                         "kWireVersion not found — the wire header must declare `inline "
                         "constexpr uint8_t kWireVersion = N;`"});
    return;
  }
  if (update) {
    if (!WriteGolden(golden_path, current)) {
      findings->push_back({"tools/wire_schema.golden", 1, kRuleR5,
                           "cannot write golden to " + golden_path});
    }
    return;
  }

  WireSchema golden;
  if (!LoadGolden(golden_path, &golden)) {
    findings->push_back({"tools/wire_schema.golden", 1, kRuleR5,
                         "golden wire schema missing or unparseable — run scripts/lint.sh "
                         "--update-wire-golden and commit the result"});
    return;
  }

  const std::string diff = SchemaDiff(golden, current);
  if (diff.empty() && golden.wire_version == current.wire_version) return;
  if (!diff.empty() && golden.wire_version == current.wire_version) {
    findings->push_back(
        {kWireHeader, current.version_line > 0 ? current.version_line : 1, kRuleR5,
         "wire layout changed without a kWireVersion bump (still v" +
             std::to_string(current.wire_version) +
             ") — peers of this build would misparse each other's frames; bump "
             "kWireVersion and regenerate the golden. Drift: " +
             diff});
    return;
  }
  // Version moved (with or without a layout change): the golden is stale.
  findings->push_back({"tools/wire_schema.golden", 1, kRuleR5,
                       "golden records kWireVersion " + std::to_string(golden.wire_version) +
                           " but the tree declares v" + std::to_string(current.wire_version) +
                           " — run scripts/lint.sh --update-wire-golden and commit the "
                           "regenerated golden" +
                           (diff.empty() ? "" : ". Drift: " + diff)});
}

// --- R6: MIDWAY_COUNTER_FIELDS X-macro consistency ---------------------------------------
//
// The X-macro is the single source of truth for every counter; a bump naming an undeclared
// field won't compile only if that translation unit is built, and a declared field nobody
// bumps silently reports zero forever. Both are lint failures.
void RunR6(const LintTree& tree, std::vector<Finding>* findings) {
  const char* kCountersHeader = "src/core/counters.h";
  const SourceFile* counters = tree.Get(kCountersHeader);
  if (!counters) return;

  static const std::regex kDeclRe(R"(^\s*X\((\w+)\s*,)");
  std::map<std::string, int> declared;  // name -> line
  for (int ln = 1; ln <= counters->line_count(); ++ln) {
    std::smatch m;
    if (std::regex_search(counters->line(ln).code, m, kDeclRe)) {
      declared.emplace(m[1].str(), ln);
    }
  }
  if (declared.empty()) return;

  static const std::regex kBumpRe(
      R"(counters\w*(?:\(\))?\s*(?:\.|->)\s*([a-z_]\w*)\s*\.\s*(?:fetch_add|fetch_sub|store)\s*\()");
  std::set<std::string> bumped;
  for (const std::string& rel : tree.Under("src/")) {
    if (!IsCppSource(rel) || rel == kCountersHeader) continue;
    const SourceFile* src = tree.Get(rel);
    if (!src) continue;
    for (int ln = 1; ln <= src->line_count(); ++ln) {
      const std::string& code = src->line(ln).code;
      if (code.find("counters") == std::string::npos) continue;
      auto begin = std::sregex_iterator(code.begin(), code.end(), kBumpRe);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string field = (*it)[1].str();
        bumped.insert(field);
        if (!declared.count(field)) {
          findings->push_back({rel, ln, kRuleR6,
                               "counter bump names undeclared field '" + field +
                                   "' — add an X(" + field +
                                   ", \"...\") entry to MIDWAY_COUNTER_FIELDS in "
                                   "src/core/counters.h"});
        }
      }
    }
  }
  for (const auto& [name, line] : declared) {
    if (!bumped.count(name)) {
      findings->push_back({kCountersHeader, line, kRuleR6,
                           "counter '" + name +
                               "' declared in MIDWAY_COUNTER_FIELDS but never incremented "
                               "anywhere in src/ — wire it up or remove the entry"});
    }
  }
}

}  // namespace midway_lint
