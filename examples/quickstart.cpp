// Quickstart: the smallest complete Midway program.
//
// Four DSM "processors" (no physically shared memory — each has a private copy of every
// region, kept consistent by the entry-consistency protocol) increment a shared counter
// under an exclusive lock and fill a shared array partitioned by a barrier.
//
//   ./quickstart [--procs=4] [--mode=rt|vmsoft|vmsig|blast|twinall] [--transport=tcp]
#include <cstdio>
#include <string>

#include "src/common/options.h"
#include "src/core/midway.h"

namespace {

midway::DetectionMode ParseMode(const std::string& name) {
  if (name == "vmsoft") return midway::DetectionMode::kVmSoft;
  if (name == "vmsig") return midway::DetectionMode::kVmSigsegv;
  if (name == "blast") return midway::DetectionMode::kBlast;
  if (name == "twinall") return midway::DetectionMode::kTwinAll;
  if (name == "rt2") return midway::DetectionMode::kRtTwoLevel;
  return midway::DetectionMode::kRt;
}

}  // namespace

int main(int argc, char** argv) {
  midway::Options options(argc, argv);
  midway::SystemConfig config;
  config.num_procs = static_cast<uint16_t>(options.GetInt("procs", 4));
  config.mode = ParseMode(options.GetString("mode", "rt"));
  config.transport = options.GetString("transport", "inproc") == "tcp"
                         ? midway::TransportKind::kTcp
                         : midway::TransportKind::kInProc;
  config.ec_check = options.GetBool("ec-check", false);
  config.ec_report_path = options.GetString("ec-report", "");
  config.trace_path = options.GetString("trace-out", "");      // chrome://tracing dump
  config.metrics_path = options.GetString("metrics-out", "");  // metrics dump (.json/.prom)

  std::printf("quickstart: %u processors, %s write detection\n", config.num_procs,
              midway::DetectionModeName(config.mode));

  midway::System system(config);
  system.Run([](midway::Runtime& rt) {
    // --- Setup (SPMD: every processor executes the same calls, in the same order) --------
    auto counter = midway::MakeSharedArray<int64_t>(rt, 1);
    auto table = midway::MakeSharedArray<int32_t>(rt, 64);
    midway::LockId lock = rt.CreateLock();
    rt.Bind(lock, {counter.WholeRange()});
    midway::BarrierId done = rt.CreateBarrier();
    // Bind the slice of `table` this processor will write.
    const size_t per = table.size() / rt.nprocs();
    rt.BindBarrier(done, {table.Range(rt.self() * per, per)});

    // init-phase: identical untracked initialization everywhere, before BeginParallel
    counter.raw_mutable()[0] = 0;
    for (size_t i = 0; i < table.size(); ++i) table.raw_mutable()[i] = 0;

    rt.BeginParallel();

    // --- Lock-protected updates ------------------------------------------------------------
    for (int i = 0; i < 10; ++i) {
      rt.Acquire(lock);                     // brings the freshest counter value here
      counter[0] = counter.Get(0) + 1;      // instrumented store (operator overloading)
      rt.Release(lock);                     // lazy: the lock stays until someone asks
    }

    // --- Partitioned writes + barrier ------------------------------------------------------
    for (size_t i = rt.self() * per; i < (rt.self() + 1u) * per; ++i) {
      table[i] = static_cast<int32_t>(i * i);
    }
    rt.BarrierWait(done);  // everyone's slice is now visible everywhere

    if (rt.self() == 0) {
      rt.Acquire(lock);
      std::printf("counter = %ld (expected %d)\n", static_cast<long>(counter.Get(0)),
                  10 * rt.nprocs());
      rt.Release(lock);
      long sum = 0;
      for (size_t i = 0; i < table.size(); ++i) sum += table.Get(i);
      std::printf("sum of table[i]=i^2 over %zu entries = %ld\n", table.size(), sum);
    }
    rt.BarrierWait(done);
  });

  auto totals = system.Total();
  std::printf("dirtybits set: %llu, write faults: %llu, data transferred: %llu bytes\n",
              static_cast<unsigned long long>(totals.dirtybits_set),
              static_cast<unsigned long long>(totals.write_faults),
              static_cast<unsigned long long>(totals.data_bytes_sent));
  const uint64_t ec_findings = system.EcReport().total();
  if (ec_findings != 0) {
    std::fprintf(stderr, "quickstart: %llu entry-consistency violations\n",
                 static_cast<unsigned long long>(ec_findings));
    return 1;
  }
  return 0;
}
