// Molecular dynamics (the paper's water pattern): N bodies under a softened inverse-square
// force, partitioned across DSM processors. Forces accumulate in private memory during the
// step (the Singh et al. optimization the paper adopts); the shared state is written once per
// step and propagated by a barrier bound to the body array. Prints energy per step — a
// conserved-ish quantity that makes consistency bugs visible immediately.
//
//   ./molecular [--procs=4] [--bodies=128] [--steps=10] [--mode=rt|vmsoft|vmsig]
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/options.h"
#include "src/common/rng.h"
#include "src/core/midway.h"

namespace {

constexpr double kDt = 1e-3;
constexpr double kEps = 0.25;

}  // namespace

int main(int argc, char** argv) {
  midway::Options options(argc, argv);
  midway::SystemConfig config;
  config.num_procs = static_cast<uint16_t>(options.GetInt("procs", 4));
  const std::string mode = options.GetString("mode", "rt");
  config.mode = mode == "vmsoft"  ? midway::DetectionMode::kVmSoft
                : mode == "vmsig" ? midway::DetectionMode::kVmSigsegv
                                  : midway::DetectionMode::kRt;
  const int n = static_cast<int>(options.GetInt("bodies", 128));
  const int steps = static_cast<int>(options.GetInt("steps", 10));
  config.ec_check = options.GetBool("ec-check", false);
  config.ec_report_path = options.GetString("ec-report", "");
  config.trace_path = options.GetString("trace-out", "");      // chrome://tracing dump
  config.metrics_path = options.GetString("metrics-out", "");  // metrics dump (.json/.prom)

  std::printf("molecular: %d bodies, %d steps, %u processors, %s\n", n, steps,
              config.num_procs, midway::DetectionModeName(config.mode));

  midway::System system(config);
  system.Run([&](midway::Runtime& rt) {
    // One body per 64-byte line: pos x/y/z, pad, vel x/y/z, pad.
    auto body = midway::MakeSharedArray<double>(rt, static_cast<size_t>(n) * 8,
                                                /*line_size=*/64);
    midway::BarrierId quiesce = rt.CreateBarrier();
    midway::BarrierId step_done = rt.CreateBarrier();
    rt.BindBarrier(quiesce, {});
    const int per = (n + rt.nprocs() - 1) / rt.nprocs();
    const int lo = std::min(n, rt.self() * per);
    const int hi = std::min(n, lo + per);
    // Bind only the bodies this processor owns (it is the sole writer of those lines).
    rt.BindBarrier(step_done, {body.Range(static_cast<size_t>(lo) * 8,
                                          static_cast<size_t>(hi - lo) * 8)});

    midway::SplitMix64 rng(11);
    // init-phase: untracked raw stores, legal only before BeginParallel
    for (int m = 0; m < n; ++m) {
      for (int k = 0; k < 3; ++k) {
        body.raw_mutable()[m * 8 + k] = rng.NextDouble(-1.0, 1.0);
        body.raw_mutable()[m * 8 + 4 + k] = rng.NextDouble(-0.05, 0.05);
      }
      body.raw_mutable()[m * 8 + 3] = 0.0;
      body.raw_mutable()[m * 8 + 7] = 0.0;
    }
    rt.BeginParallel();

    std::vector<double> force(static_cast<size_t>(std::max(hi - lo, 0)) * 3);
    for (int step = 0; step < steps; ++step) {
      for (int i = lo; i < hi; ++i) {
        double* f = &force[(i - lo) * 3];
        f[0] = f[1] = f[2] = 0.0;
        const double* pi = body.raw() + static_cast<size_t>(i) * 8;
        for (int j = 0; j < n; ++j) {
          if (j == i) continue;
          const double* pj = body.raw() + static_cast<size_t>(j) * 8;
          const double d0 = pi[0] - pj[0], d1 = pi[1] - pj[1], d2 = pi[2] - pj[2];
          const double r2 = d0 * d0 + d1 * d1 + d2 * d2 + kEps;
          const double inv = 1.0 / (r2 * std::sqrt(r2));
          f[0] -= d0 * inv;
          f[1] -= d1 * inv;
          f[2] -= d2 * inv;
        }
      }
      rt.BarrierWait(quiesce);
      for (int m = lo; m < hi; ++m) {
        for (int k = 0; k < 3; ++k) {
          const double v = body.Get(m * 8 + 4 + k) + force[(m - lo) * 3 + k] * kDt;
          body[m * 8 + 4 + k] = v;
          body[m * 8 + k] = body.Get(m * 8 + k) + v * kDt;
        }
      }
      rt.BarrierWait(step_done);

      if (rt.self() == 0) {
        double kinetic = 0;
        for (int m = 0; m < n; ++m) {
          for (int k = 0; k < 3; ++k) {
            const double v = body.Get(m * 8 + 4 + k);
            kinetic += 0.5 * v * v;
          }
        }
        std::printf("step %2d: kinetic energy %.6f\n", step + 1, kinetic);
      }
    }
  });

  std::printf("data transferred: %.1f KB; dirtybits set: %llu; write faults: %llu\n",
              system.Total().data_bytes_sent / 1024.0,
              static_cast<unsigned long long>(system.Total().dirtybits_set),
              static_cast<unsigned long long>(system.Total().write_faults));
  const uint64_t ec_findings = system.EcReport().total();
  if (ec_findings != 0) {
    std::fprintf(stderr, "molecular: %llu entry-consistency violations\n",
                 static_cast<unsigned long long>(ec_findings));
    return 1;
  }
  return 0;
}
