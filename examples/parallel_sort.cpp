// Parallel sort over a work queue with lock *rebinding* — the paper's quicksort pattern as a
// standalone example. Demonstrates: a shared task queue under a queue lock, task locks drawn
// from a pool and rebound to each task's sub-array, and optional real-TCP transport so every
// update crosses a kernel socket.
//
//   ./parallel_sort [--procs=4] [--elements=50000] [--mode=rt|vmsoft|vmsig|blast]
//                   [--transport=tcp]
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/options.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/midway.h"

namespace {

constexpr int kThreshold = 1024;
constexpr int kPool = 256;

}  // namespace

int main(int argc, char** argv) {
  midway::Options options(argc, argv);
  midway::SystemConfig config;
  config.num_procs = static_cast<uint16_t>(options.GetInt("procs", 4));
  const std::string mode = options.GetString("mode", "rt");
  config.mode = mode == "vmsoft"  ? midway::DetectionMode::kVmSoft
                : mode == "vmsig" ? midway::DetectionMode::kVmSigsegv
                : mode == "blast" ? midway::DetectionMode::kBlast
                                  : midway::DetectionMode::kRt;
  config.transport = options.GetString("transport", "inproc") == "tcp"
                         ? midway::TransportKind::kTcp
                         : midway::TransportKind::kInProc;
  const int n = static_cast<int>(options.GetInt("elements", 50'000));
  config.ec_check = options.GetBool("ec-check", false);
  config.ec_report_path = options.GetString("ec-report", "");
  config.trace_path = options.GetString("trace-out", "");      // chrome://tracing dump
  config.metrics_path = options.GetString("metrics-out", "");  // metrics dump (.json/.prom)

  std::printf("parallel_sort: %d elements, %u processors, %s, %s transport\n", n,
              config.num_procs, midway::DetectionModeName(config.mode),
              config.transport == midway::TransportKind::kTcp ? "TCP" : "in-process");

  midway::Stopwatch watch;
  bool sorted = false;
  midway::System system(config);
  system.Run([&](midway::Runtime& rt) {
    auto data = midway::MakeSharedArray<int32_t>(rt, n, /*line_size=*/4);
    // Queue: [0] stack top, [1] outstanding work, [2] next pool slot; entries {lo,hi,lock}.
    auto queue = midway::MakeSharedArray<int32_t>(rt, 3 + 3 * kPool);
    midway::LockId qlock = rt.CreateLock();
    rt.Bind(qlock, {queue.WholeRange()});
    std::vector<midway::LockId> pool(kPool);
    for (auto& id : pool) id = rt.CreateLock();
    rt.Bind(pool[0], {data.WholeRange()});
    midway::BarrierId done = rt.CreateBarrier();
    rt.BindBarrier(done, {});

    midway::SplitMix64 rng(7);
    // init-phase: untracked raw stores, legal only before BeginParallel
    for (int i = 0; i < n; ++i) {
      data.raw_mutable()[i] = static_cast<int32_t>(rng.NextBounded(1u << 30));
    }
    for (size_t i = 0; i < queue.size(); ++i) queue.raw_mutable()[i] = 0;
    queue.raw_mutable()[0] = 1;
    queue.raw_mutable()[1] = 1;
    queue.raw_mutable()[2] = 1;
    queue.raw_mutable()[3] = 0;   // root task: [0, n) under pool[0]
    queue.raw_mutable()[4] = n;
    queue.raw_mutable()[5] = 0;
    rt.BeginParallel();

    std::vector<int32_t> scratch;
    for (;;) {
      int lo = 0, hi = 0, lock_index = -1;
      bool finished = false;
      rt.Acquire(qlock);
      int top = queue.Get(0);
      if (top > 0) {
        lo = queue.Get(3 + 3 * (top - 1));
        hi = queue.Get(4 + 3 * (top - 1));
        lock_index = queue.Get(5 + 3 * (top - 1));
        queue[0] = top - 1;
      } else if (queue.Get(1) == 0) {
        finished = true;
      }
      rt.Release(qlock);
      if (finished) break;
      if (lock_index < 0) {
        std::this_thread::yield();
        continue;
      }

      rt.Acquire(pool[lock_index]);
      if (hi - lo <= kThreshold) {
        scratch.assign(data.raw() + lo, data.raw() + hi);
        std::sort(scratch.begin(), scratch.end());
        data.SetRange(lo, scratch.data(), scratch.size());
        rt.Release(pool[lock_index]);
        rt.Acquire(qlock);
        queue[1] = queue.Get(1) - 1;
        rt.Release(qlock);
        continue;
      }
      // Partition in place under the task lock.
      const int32_t pivot = data.Get(lo + (hi - lo) / 2);
      int i = lo, j = hi - 1;
      while (i <= j) {
        while (data.Get(i) < pivot) ++i;
        while (data.Get(j) > pivot) --j;
        if (i <= j) {
          int32_t t = data.Get(i);
          data[i] = data.Get(j);
          data[j] = t;
          ++i;
          --j;
        }
      }
      // Children: [lo, j+1) and [i, hi); the middle [j+1, i) is already in place and stays
      // with this task's lock.
      struct Child {
        int lo, hi;
      } children[2] = {{lo, j + 1}, {i, hi}};
      int slots[2] = {-1, -1};
      rt.Acquire(qlock);
      for (int c = 0; c < 2; ++c) {
        if (children[c].hi > children[c].lo) {
          slots[c] = queue.Get(2);
          queue[2] = slots[c] + 1;
          if (slots[c] >= kPool) {
            std::fprintf(stderr, "lock pool exhausted\n");
            std::abort();
          }
        }
      }
      rt.Release(qlock);
      for (int c = 0; c < 2; ++c) {
        if (slots[c] < 0) continue;
        rt.Acquire(pool[slots[c]]);
        rt.Rebind(pool[slots[c]],
                  {data.Range(children[c].lo, children[c].hi - children[c].lo)});
        rt.Release(pool[slots[c]]);
      }
      rt.Rebind(pool[lock_index], {data.Range(j + 1, std::max(0, i - (j + 1)))});
      rt.Release(pool[lock_index]);
      rt.Acquire(qlock);
      for (int c = 0; c < 2; ++c) {
        if (slots[c] < 0) continue;
        int t = queue.Get(0);
        queue[3 + 3 * t] = children[c].lo;
        queue[4 + 3 * t] = children[c].hi;
        queue[5 + 3 * t] = slots[c];
        queue[0] = t + 1;
        queue[1] = queue.Get(1) + 1;
      }
      queue[1] = queue.Get(1) - 1;
      rt.Release(qlock);
    }

    rt.BarrierWait(done);
    if (rt.self() == 0) {
      // Fetch the whole array through the pool locks (every slot that was ever used).
      rt.Acquire(qlock);
      const int used = queue.Get(2);
      rt.Release(qlock);
      for (int s = 0; s < used; ++s) {
        rt.Acquire(pool[s], midway::LockMode::kShared);
        rt.Release(pool[s]);
      }
      sorted = std::is_sorted(data.raw(), data.raw() + n);
    }
    rt.BarrierWait(done);
  });

  std::printf("%s in %.3f s; data transferred %.1f KB, %llu lock grants\n",
              sorted ? "sorted" : "NOT SORTED (bug!)", watch.ElapsedSeconds(),
              system.Total().data_bytes_sent / 1024.0,
              static_cast<unsigned long long>(system.Total().lock_grants));
  const uint64_t ec_findings = system.EcReport().total();
  if (ec_findings != 0) {
    std::fprintf(stderr, "parallel_sort: %llu entry-consistency violations\n",
                 static_cast<unsigned long long>(ec_findings));
    return 1;
  }
  return sorted ? 0 : 1;
}
