// Producer/consumer pipeline over a shared bounded ring buffer, with protocol tracing and
// per-lock statistics — the observability side of the library.
//
// Node 0 produces items into a ring in shared memory; every other node consumes items,
// transforms them, and folds them into a per-node checksum slot. All ring state (head, tail,
// items) is bound to one ring lock; checksums are bound to a results lock. At the end node 0
// verifies the combined checksum against the expected value and prints the "hot locks" table
// and the tail of its protocol trace.
//
//   ./pipeline [--procs=4] [--items=2000] [--ring=64] [--mode=rt|vmsoft|vmsig]
#include <cstdio>
#include <thread>

#include "src/common/options.h"
#include "src/core/midway.h"
#include "src/core/trace.h"

namespace {

// A cheap invertible scramble standing in for per-item work.
uint64_t Transform(uint64_t v) {
  v ^= v >> 33;
  v *= 0xFF51AFD7ED558CCDull;
  v ^= v >> 33;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  midway::Options options(argc, argv);
  midway::SystemConfig config;
  config.num_procs = static_cast<uint16_t>(options.GetInt("procs", 4));
  const std::string mode = options.GetString("mode", "rt");
  config.mode = mode == "vmsoft"  ? midway::DetectionMode::kVmSoft
                : mode == "vmsig" ? midway::DetectionMode::kVmSigsegv
                                  : midway::DetectionMode::kRt;
  config.trace_capacity = 64;  // keep the most recent protocol events per node
  const int items = static_cast<int>(options.GetInt("items", 2000));
  const int ring_size = static_cast<int>(options.GetInt("ring", 64));
  config.ec_check = options.GetBool("ec-check", false);
  config.ec_report_path = options.GetString("ec-report", "");
  config.trace_path = options.GetString("trace-out", "");      // chrome://tracing dump
  config.metrics_path = options.GetString("metrics-out", "");  // metrics dump (.json/.prom)

  std::printf("pipeline: %d items through a %d-slot ring, %u processors, %s\n", items,
              ring_size, config.num_procs, midway::DetectionModeName(config.mode));
  if (config.num_procs < 2) {
    std::fprintf(stderr, "needs at least 2 processors (one producer, one consumer)\n");
    return 1;
  }

  uint64_t expected = 0;
  for (int i = 0; i < items; ++i) {
    expected += Transform(static_cast<uint64_t>(i) * 2654435761u);
  }

  bool ok = false;
  midway::System system(config);
  system.Run([&](midway::Runtime& rt) {
    // Ring layout (int64 slots): [0] head (next pop), [1] tail (next push),
    // [2] produced-done flag, [3..3+ring) item slots.
    auto ring = midway::MakeSharedArray<int64_t>(rt, 3 + ring_size);
    auto sums = midway::MakeSharedArray<int64_t>(rt, rt.nprocs());
    midway::LockId ring_lock = rt.CreateLock();
    rt.Bind(ring_lock, {ring.WholeRange()});
    midway::LockId sums_lock = rt.CreateLock();
    rt.Bind(sums_lock, {sums.WholeRange()});
    midway::BarrierId done = rt.CreateBarrier();
    rt.BindBarrier(done, {});
    // init-phase: untracked raw stores, legal only before BeginParallel
    for (size_t i = 0; i < ring.size(); ++i) ring.raw_mutable()[i] = 0;
    for (size_t i = 0; i < sums.size(); ++i) sums.raw_mutable()[i] = 0;
    rt.BeginParallel();

    if (rt.self() == 0) {
      // Producer: push every item, spinning politely while the ring is full.
      int produced = 0;
      while (produced < items) {
        rt.Acquire(ring_lock);
        int64_t head = ring.Get(0);
        int64_t tail = ring.Get(1);
        int pushed = 0;
        while (produced < items && tail - head < ring_size) {
          ring[3 + static_cast<size_t>(tail % ring_size)] =
              static_cast<int64_t>(static_cast<uint64_t>(produced) * 2654435761u);
          ++tail;
          ++produced;
          ++pushed;
        }
        ring[1] = tail;
        if (produced == items) {
          ring[2] = 1;
        }
        rt.Release(ring_lock);
        if (pushed == 0) {
          std::this_thread::yield();
        }
      }
    } else {
      // Consumer: pop batches, transform privately, fold into my checksum slot.
      uint64_t local_sum = 0;
      for (;;) {
        rt.Acquire(ring_lock);
        int64_t head = ring.Get(0);
        const int64_t tail = ring.Get(1);
        const bool producer_done = ring.Get(2) != 0;
        std::vector<uint64_t> batch;
        while (head < tail && batch.size() < 16) {
          batch.push_back(static_cast<uint64_t>(ring.Get(3 + static_cast<size_t>(head % ring_size))));
          ++head;
        }
        ring[0] = head;
        const bool drained = head == tail;
        rt.Release(ring_lock);
        for (uint64_t v : batch) {
          local_sum += Transform(v);
        }
        if (batch.empty()) {
          if (producer_done && drained) break;
          std::this_thread::yield();
        }
      }
      rt.Acquire(sums_lock);
      sums[rt.self()] = static_cast<int64_t>(local_sum);
      rt.Release(sums_lock);
    }

    rt.BarrierWait(done);
    if (rt.self() == 0) {
      rt.Acquire(sums_lock, midway::LockMode::kShared);
      uint64_t total = 0;
      for (size_t i = 0; i < sums.size(); ++i) {
        total += static_cast<uint64_t>(sums.Get(i));
      }
      rt.Release(sums_lock);
      ok = total == expected;
      std::printf("checksum %s (0x%016llx)\n", ok ? "OK" : "MISMATCH",
                  static_cast<unsigned long long>(total));
      std::printf("\nlast protocol events at the producer:\n%s",
                  midway::FormatTrace(rt.TraceSnapshot()).c_str());
    }
    rt.BarrierWait(done);
  });

  std::printf("\nhot locks (aggregated over all processors):\n%s",
              midway::FormatLockStats(system.AggregatedLockStats()).c_str());
  const uint64_t ec_findings = system.EcReport().total();
  if (ec_findings != 0) {
    std::fprintf(stderr, "pipeline: %llu entry-consistency violations\n",
                 static_cast<unsigned long long>(ec_findings));
    return 1;
  }
  return ok ? 0 : 1;
}
