// Multi-process DSM: one OS process per DSM processor over a real TCP mesh — the paper's
// network-of-workstations deployment. This launcher forks N-1 workers (each could equally be
// started on another machine with --rank/--port pointing at the coordinator) and computes a
// distributed dot product: each rank fills its slice of two shared vectors, publishes it
// through a barrier, accumulates its partial product into a lock-protected scalar, and
// rank 0 prints the verified result.
//
//   ./distributed_sum [--procs=4] [--elements=100000] [--mode=rt|vmsoft|vmsig]
//   # or run each rank by hand:
//   ./distributed_sum --procs=4 --rank=0 --port=7700 &
//   ./distributed_sum --procs=4 --rank=1 --port=7700 &  # ... ranks 2, 3
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/options.h"
#include "src/core/distributed.h"
#include "src/core/midway.h"
#include "src/net/socket_util.h"

namespace {

int RunRank(const midway::SystemConfig& config, const midway::DistributedOptions& opts,
            int elements) {
  bool ok = false;
  midway::CounterSnapshot stats = midway::RunDistributedNode(config, opts, [&](midway::Runtime&
                                                                                   rt) {
    auto a = midway::MakeSharedArray<double>(rt, elements, /*line_size=*/8);
    auto b = midway::MakeSharedArray<double>(rt, elements, /*line_size=*/8);
    auto result = midway::MakeSharedArray<double>(rt, 1);
    midway::LockId result_lock = rt.CreateLock();
    rt.Bind(result_lock, {result.WholeRange()});
    const int procs = rt.nprocs();
    const int per = (elements + procs - 1) / procs;
    const int lo = std::min(elements, rt.self() * per);
    const int hi = std::min(elements, lo + per);
    midway::BarrierId publish = rt.CreateBarrier();
    rt.BindBarrier(publish, hi > lo
                                ? std::vector<midway::GlobalRange>{a.Range(lo, hi - lo),
                                                                   b.Range(lo, hi - lo)}
                                : std::vector<midway::GlobalRange>{});
    midway::BarrierId done = rt.CreateBarrier();
    rt.BindBarrier(done, {});
    // init-phase: untracked raw stores, legal only before BeginParallel
    result.raw_mutable()[0] = 0.0;
    for (int i = 0; i < elements; ++i) {
      a.raw_mutable()[i] = 0.0;
      b.raw_mutable()[i] = 0.0;
    }
    rt.BeginParallel();

    // Each rank produces its slice (tracked writes) and publishes it.
    for (int i = lo; i < hi; ++i) {
      a[i] = 1.0 + (i % 7);
      b[i] = 2.0;
    }
    rt.BarrierWait(publish);

    double partial = 0;
    for (int i = lo; i < hi; ++i) {
      partial += a.Get(i) * b.Get(i);
    }
    rt.Acquire(result_lock);
    result[0] = result.Get(0) + partial;
    rt.Release(result_lock);
    rt.BarrierWait(done);

    if (rt.self() == 0) {
      rt.Acquire(result_lock, midway::LockMode::kShared);
      double expected = 0;
      for (int i = 0; i < elements; ++i) {
        expected += (1.0 + (i % 7)) * 2.0;
      }
      ok = result.Get(0) == expected;
      std::printf("rank 0: dot product = %.1f (%s)\n", result.Get(0),
                  ok ? "verified" : "MISMATCH");
      rt.Release(result_lock);
    } else {
      ok = true;
    }
  });
  std::printf("rank %u (pid %d): %llu bytes of updates shipped, %llu lock grants\n",
              opts.rank, getpid(), static_cast<unsigned long long>(stats.data_bytes_sent),
              static_cast<unsigned long long>(stats.lock_grants));
  // Per-rank checker verdict: each OS process runs its own checker, so fold its counters
  // into the rank's exit status (the launcher propagates any nonzero worker exit).
  const uint64_t ec_findings = stats.ec_unbound_writes + stats.ec_wrong_lock_writes +
                               stats.ec_rebind_gap_writes + stats.ec_lockset_violations +
                               stats.ec_binding_overlaps + stats.ec_stale_reads;
  if (ec_findings != 0) {
    std::fprintf(stderr, "rank %u: %llu entry-consistency violations\n", opts.rank,
                 static_cast<unsigned long long>(ec_findings));
    ok = false;
  }
  std::fflush(stdout);  // workers _exit(), which skips stdio flushing
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  midway::Options options(argc, argv);
  midway::SystemConfig config;
  const int procs = static_cast<int>(options.GetInt("procs", 4));
  config.num_procs = static_cast<uint16_t>(procs);
  const std::string mode = options.GetString("mode", "rt");
  config.mode = mode == "vmsoft"  ? midway::DetectionMode::kVmSoft
                : mode == "vmsig" ? midway::DetectionMode::kVmSigsegv
                                  : midway::DetectionMode::kRt;
  const int elements = static_cast<int>(options.GetInt("elements", 100'000));
  config.ec_check = options.GetBool("ec-check", false);
  config.ec_report_path = options.GetString("ec-report", "");
  config.trace_path = options.GetString("trace-out", "");      // chrome://tracing dump
  config.metrics_path = options.GetString("metrics-out", "");  // metrics dump (.json/.prom)

  if (options.Has("rank")) {
    // Manual mode: this process is one explicit rank of an externally launched mesh.
    midway::DistributedOptions opts;
    opts.rank = static_cast<midway::NodeId>(options.GetInt("rank", 0));
    opts.num_procs = config.num_procs;
    opts.host = options.GetString("host", "127.0.0.1");
    opts.coordinator_port = static_cast<uint16_t>(options.GetInt("port", 7700));
    return RunRank(config, opts, elements);
  }

  // Launcher mode: bind an ephemeral coordinator port, fork the workers, become rank 0.
  std::printf("distributed_sum: %d processes, %d elements, %s\n", procs, elements,
              midway::DetectionModeName(config.mode));
  std::fflush(stdout);  // children inherit the stdio buffer; flush before forking
  uint16_t port = 0;
  int listener = midway::net::Listen("127.0.0.1", &port);
  std::vector<pid_t> children;
  for (int rank = 1; rank < procs; ++rank) {
    pid_t pid = fork();
    if (pid == 0) {
      ::close(listener);
      midway::DistributedOptions opts;
      opts.rank = static_cast<midway::NodeId>(rank);
      opts.num_procs = config.num_procs;
      opts.coordinator_port = port;
      _exit(RunRank(config, opts, elements));
    }
    children.push_back(pid);
  }
  midway::DistributedOptions opts;
  opts.rank = 0;
  opts.num_procs = config.num_procs;
  opts.adopted_listener_fd = listener;
  int code = RunRank(config, opts, elements);
  for (pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      code = 1;
    }
  }
  std::printf("%s\n", code == 0 ? "all ranks verified" : "FAILED");
  return code;
}
