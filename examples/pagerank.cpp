// PageRank over a synthetic web graph: an iterative pull-style computation where every
// processor owns a slice of the rank vector, reads the whole previous-iteration vector
// (local reads — the update protocol has no read misses), and publishes its slice through a
// barrier binding. A lock-protected scalar accumulates the per-iteration dangling-node mass.
//
//   ./pagerank [--procs=4] [--nodes=2000] [--iters=20] [--mode=rt|vmsoft|vmsig]
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/options.h"
#include "src/common/rng.h"
#include "src/core/midway.h"

namespace {

constexpr double kDamping = 0.85;

// A scale-free-ish random graph in CSR form (out-edges), identical on every processor.
struct Graph {
  int n;
  std::vector<int> out_ptr;
  std::vector<int> out_dst;
  std::vector<int> in_ptr;   // transposed, for pull-style updates
  std::vector<int> in_src;
};

Graph MakeGraph(int n, uint64_t seed) {
  midway::SplitMix64 rng(seed);
  std::vector<std::vector<int>> out(n);
  for (int v = 0; v < n; ++v) {
    // Preferential-attachment flavor: later nodes link to earlier ones, plus random edges.
    const int degree = 1 + static_cast<int>(rng.NextBounded(6));
    for (int e = 0; e < degree && v > 0; ++e) {
      const int target = static_cast<int>(rng.NextBounded(rng.NextBounded(2) != 0u ? v : n));
      if (target != v) out[v].push_back(target);
    }
  }
  Graph g;
  g.n = n;
  g.out_ptr.assign(n + 1, 0);
  std::vector<std::vector<int>> in(n);
  for (int v = 0; v < n; ++v) {
    g.out_ptr[v + 1] = g.out_ptr[v] + static_cast<int>(out[v].size());
    for (int d : out[v]) {
      g.out_dst.push_back(d);
      in[d].push_back(v);
    }
  }
  g.in_ptr.assign(n + 1, 0);
  for (int v = 0; v < n; ++v) {
    g.in_ptr[v + 1] = g.in_ptr[v] + static_cast<int>(in[v].size());
    g.in_src.insert(g.in_src.end(), in[v].begin(), in[v].end());
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  midway::Options options(argc, argv);
  midway::SystemConfig config;
  config.num_procs = static_cast<uint16_t>(options.GetInt("procs", 4));
  const std::string mode = options.GetString("mode", "rt");
  config.mode = mode == "vmsoft"  ? midway::DetectionMode::kVmSoft
                : mode == "vmsig" ? midway::DetectionMode::kVmSigsegv
                                  : midway::DetectionMode::kRt;
  const int n = static_cast<int>(options.GetInt("nodes", 2000));
  const int iters = static_cast<int>(options.GetInt("iters", 20));
  config.ec_check = options.GetBool("ec-check", false);
  config.ec_report_path = options.GetString("ec-report", "");
  config.trace_path = options.GetString("trace-out", "");      // chrome://tracing dump
  config.metrics_path = options.GetString("metrics-out", "");  // metrics dump (.json/.prom)

  std::printf("pagerank: %d nodes, %d iterations, %u processors, %s\n", n, iters,
              config.num_procs, midway::DetectionModeName(config.mode));

  const Graph g = MakeGraph(n, 17);
  midway::System system(config);
  system.Run([&](midway::Runtime& rt) {
    // Double buffering: ranks[phase % 2] is read, ranks[(phase+1) % 2] is written.
    midway::SharedArray<double> ranks[2] = {
        midway::MakeSharedArray<double>(rt, n, /*line_size=*/8),
        midway::MakeSharedArray<double>(rt, n, /*line_size=*/8),
    };
    auto dangling = midway::MakeSharedArray<double>(rt, 1);
    midway::LockId dangling_lock = rt.CreateLock();
    rt.Bind(dangling_lock, {dangling.WholeRange()});

    const int procs = rt.nprocs();
    const int per = (n + procs - 1) / procs;
    const int lo = std::min(n, rt.self() * per);
    const int hi = std::min(n, lo + per);
    // Two barriers (one per buffer parity), each bound to this processor's output slice.
    midway::BarrierId publish[2] = {rt.CreateBarrier(), rt.CreateBarrier()};
    for (int parity = 0; parity < 2; ++parity) {
      rt.BindBarrier(publish[parity],
                     hi > lo ? std::vector<midway::GlobalRange>{ranks[parity].Range(lo, hi - lo)}
                             : std::vector<midway::GlobalRange>{});
    }
    midway::BarrierId sync = rt.CreateBarrier();
    rt.BindBarrier(sync, {});

    // init-phase: untracked raw stores, legal only before BeginParallel
    for (int v = 0; v < n; ++v) {
      ranks[0].raw_mutable()[v] = 1.0 / n;
      ranks[1].raw_mutable()[v] = 0.0;
    }
    dangling.raw_mutable()[0] = 0.0;
    rt.BeginParallel();

    for (int it = 0; it < iters; ++it) {
      const auto& src = ranks[it % 2];
      auto& dst = ranks[(it + 1) % 2];
      // Accumulate this slice's dangling mass into the shared scalar.
      double local_dangling = 0;
      for (int v = lo; v < hi; ++v) {
        if (g.out_ptr[v + 1] == g.out_ptr[v]) {
          local_dangling += src.Get(v);
        }
      }
      rt.Acquire(dangling_lock);
      dangling[0] = dangling.Get(0) + local_dangling;
      rt.Release(dangling_lock);
      rt.BarrierWait(sync);  // all contributions in

      rt.Acquire(dangling_lock, midway::LockMode::kShared);
      const double dangling_share = dangling.Get(0) / n;
      rt.Release(dangling_lock);

      for (int v = lo; v < hi; ++v) {
        double sum = 0;
        for (int e = g.in_ptr[v]; e < g.in_ptr[v + 1]; ++e) {
          const int u = g.in_src[e];
          sum += src.Get(u) / (g.out_ptr[u + 1] - g.out_ptr[u]);
        }
        dst.Set(v, (1.0 - kDamping) / n + kDamping * (sum + dangling_share));
      }
      rt.BarrierWait(publish[(it + 1) % 2]);  // everyone's slice becomes visible

      // Reset the dangling accumulator for the next iteration (one processor does it).
      if (rt.self() == 0) {
        rt.Acquire(dangling_lock);
        dangling[0] = 0.0;
        rt.Release(dangling_lock);
      }
      rt.BarrierWait(sync);
    }

    if (rt.self() == 0) {
      const auto& final_ranks = ranks[iters % 2];
      double total = 0;
      int argmax = 0;
      for (int v = 0; v < n; ++v) {
        total += final_ranks.Get(v);
        if (final_ranks.Get(v) > final_ranks.Get(argmax)) argmax = v;
      }
      std::printf("rank mass %.6f (should approach 1.0), top node %d with rank %.6f\n", total,
                  argmax, final_ranks.Get(argmax));
    }
  });

  std::printf("data transferred: %.1f KB over %llu messages\n",
              system.Total().data_bytes_sent / 1024.0,
              static_cast<unsigned long long>(system.transport().PacketsSent()));
  const uint64_t ec_findings = system.EcReport().total();
  if (ec_findings != 0) {
    std::fprintf(stderr, "pagerank: %llu entry-consistency violations\n",
                 static_cast<unsigned long long>(ec_findings));
    return 1;
  }
  return 0;
}
