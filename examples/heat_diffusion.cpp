// Heat diffusion on a metal plate: a domain-decomposition workload (the sor pattern from the
// paper's evaluation) driven through the public API, printing the temperature field as it
// converges.
//
// The plate is split into row bands, one per processor. Each iteration performs a Jacobi-ish
// red-black relaxation; only the band edges are shared, so the per-step barrier is bound to
// exactly those rows — entry consistency ships nothing else.
//
//   ./heat_diffusion [--procs=4] [--size=48] [--iters=200] [--mode=rt|vmsoft|vmsig]
#include <cstdio>
#include <string>

#include "src/common/options.h"
#include "src/core/midway.h"

namespace {

const char kShades[] = " .:-=+*#%@";

void PrintPlate(const double* plate, int dim) {
  // Downsample to at most 64x32 characters.
  const int step = dim > 64 ? dim / 64 : 1;
  for (int i = 0; i < dim; i += 2 * step) {
    for (int j = 0; j < dim; j += step) {
      int shade = static_cast<int>(plate[i * dim + j] / 100.0 * 9.99);
      if (shade < 0) shade = 0;
      if (shade > 9) shade = 9;
      std::putchar(kShades[shade]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  midway::Options options(argc, argv);
  midway::SystemConfig config;
  config.num_procs = static_cast<uint16_t>(options.GetInt("procs", 4));
  const std::string mode = options.GetString("mode", "rt");
  config.mode = mode == "vmsoft"  ? midway::DetectionMode::kVmSoft
                : mode == "vmsig" ? midway::DetectionMode::kVmSigsegv
                                  : midway::DetectionMode::kRt;
  const int size = static_cast<int>(options.GetInt("size", 48));
  const int iters = static_cast<int>(options.GetInt("iters", 200));
  const int dim = size + 2;
  config.ec_check = options.GetBool("ec-check", false);
  config.ec_report_path = options.GetString("ec-report", "");
  config.trace_path = options.GetString("trace-out", "");      // chrome://tracing dump
  config.metrics_path = options.GetString("metrics-out", "");  // metrics dump (.json/.prom)

  std::printf("heat_diffusion: %dx%d plate, %d iterations, %u processors, %s\n", size, size,
              iters, config.num_procs, midway::DetectionModeName(config.mode));

  midway::System system(config);
  system.Run([&](midway::Runtime& rt) {
    auto plate = midway::MakeSharedArray<double>(rt, static_cast<size_t>(dim) * dim,
                                                 /*line_size=*/8);
    const int procs = rt.nprocs();
    const int per = (size + procs - 1) / procs;
    auto band_lo = [&](int p) { return std::min(dim - 1, 1 + p * per); };
    const int my_lo = band_lo(rt.self());
    const int my_hi = band_lo(rt.self() + 1);

    // Step barrier: this processor's band edges. Gather barrier: its whole band.
    std::vector<midway::GlobalRange> edges;
    std::vector<midway::GlobalRange> band;
    if (my_lo < my_hi) {
      edges.push_back(plate.Range(static_cast<size_t>(my_lo) * dim, dim));
      edges.push_back(plate.Range(static_cast<size_t>(my_hi - 1) * dim, dim));
      band.push_back(plate.Range(static_cast<size_t>(my_lo) * dim,
                                 static_cast<size_t>(my_hi - my_lo) * dim));
    }
    midway::BarrierId step = rt.CreateBarrier();
    rt.BindBarrier(step, edges);
    midway::BarrierId snapshot = rt.CreateBarrier();
    rt.BindBarrier(snapshot, band);

    // A hot spot on the top edge, cold everywhere else. (init-phase: untracked raw
    // stores, legal only before BeginParallel)
    for (int i = 0; i < dim; ++i) {
      for (int j = 0; j < dim; ++j) {
        plate.raw_mutable()[i * dim + j] = (i == 0 && j > dim / 4 && j < 3 * dim / 4) ? 100.0
                                                                                      : 0.0;
      }
    }
    rt.BeginParallel();

    auto at = [&](int i, int j) { return plate.Get(static_cast<size_t>(i) * dim + j); };
    for (int it = 0; it < iters; ++it) {
      for (int color = 0; color < 2; ++color) {
        for (int i = my_lo; i < my_hi; ++i) {
          for (int j = 1 + ((i + color) % 2); j < dim - 1; j += 2) {
            plate.Set(static_cast<size_t>(i) * dim + j,
                      0.25 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1)));
          }
        }
        rt.BarrierWait(step);
      }
      if ((it + 1) % (iters / 2) == 0) {
        rt.BarrierWait(snapshot);  // bring every band to every node for printing
        if (rt.self() == 0) {
          std::printf("\nafter %d iterations:\n", it + 1);
          PrintPlate(plate.raw(), dim);
        }
        rt.BarrierWait(step);  // hold everyone until the print is done
      }
    }
  });

  auto totals = system.Total();
  std::printf("\ndata transferred: %.1f KB across %llu barrier crossings\n",
              totals.data_bytes_sent / 1024.0,
              static_cast<unsigned long long>(totals.barrier_crossings));
  const uint64_t ec_findings = system.EcReport().total();
  if (ec_findings != 0) {
    std::fprintf(stderr, "heat_diffusion: %llu entry-consistency violations\n",
                 static_cast<unsigned long long>(ec_findings));
    return 1;
  }
  return 0;
}
