// Table 4: write collection cost per application (per-processor averages, counts x Table 1
// costs), with the paper's per-primitive breakdown.
#include "bench/bench_util.h"
#include "src/core/cost_model.h"

namespace midway {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  PrintHeader("Table 4: write collection time (ms, counts x Table 1 costs)", opts);

  CostModel model;
  auto rt = RunSuite(DetectionMode::kRt, opts);
  auto vm = RunSuite(DetectionMode::kVmSoft, opts);

  std::vector<std::string> header = {"System", "Operation"};
  for (const std::string& app : AppNames()) header.push_back(app);
  Table t(header);

  auto add = [&](const char* system, const char* op, auto value) {
    std::vector<std::string> cells = {system, op};
    for (const std::string& app : AppNames()) cells.push_back(Table::Fixed(value(app)));
    t.AddRow(std::move(cells));
  };

  add("RT-DSM", "clean dirtybits read",
      [&](const std::string& a) { return model.RtCollection(rt.at(a).per_proc).clean_ms; });
  add("", "dirty dirtybits read",
      [&](const std::string& a) { return model.RtCollection(rt.at(a).per_proc).dirty_ms; });
  add("", "dirtybits updated",
      [&](const std::string& a) { return model.RtCollection(rt.at(a).per_proc).updated_ms; });
  add("", "Total",
      [&](const std::string& a) { return model.RtCollection(rt.at(a).per_proc).total_ms; });
  t.AddSeparator();
  add("VM-DSM", "pages diffed",
      [&](const std::string& a) { return model.VmCollection(vm.at(a).per_proc).diff_ms; });
  add("", "pages write protected",
      [&](const std::string& a) { return model.VmCollection(vm.at(a).per_proc).protect_ms; });
  add("", "data updated in twins",
      [&](const std::string& a) { return model.VmCollection(vm.at(a).per_proc).twin_ms; });
  add("", "Total",
      [&](const std::string& a) { return model.VmCollection(vm.at(a).per_proc).total_ms; });
  t.AddSeparator();
  add("", "RT-DSM collection advantage", [&](const std::string& a) {
    return model.VmCollection(vm.at(a).per_proc).total_ms -
           model.RtCollection(rt.at(a).per_proc).total_ms;
  });
  std::printf("%s", t.Render().c_str());
  std::printf("Paper's findings: collection under VM-DSM costs more than under RT-DSM except\n"
              "for quicksort (rebinding lets VM skip diffing — a negative advantage row is\n"
              "expected there); collection cost grows with the amount of write sharing.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
