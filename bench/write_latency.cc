// Average write latency by detection strategy — the paper's primary motivation ("we show
// that the new method has low average write latency").
//
// One DSM processor writes a large shared array through the instrumented store path. Two
// passes are timed separately to expose VM-DSM's amortization: the *cold* pass pays one page
// fault (twin + unprotect) per page, the *warm* pass runs at full speed; RT-DSM pays the
// same few-instruction dirtybit cost on every store of both passes (paper §1.1/§2).
#include "bench/bench_util.h"
#include "src/common/stopwatch.h"

namespace midway {
namespace bench {
namespace {

struct LatencyResult {
  double cold_ns = 0;  // first pass: first-touch costs included
  double warm_ns = 0;  // second pass: steady state
  CounterSnapshot totals;
};

LatencyResult MeasureWrites(DetectionMode mode, int elements, int repeats,
                            bool ec_check = false, bool spans = false) {
  SystemConfig config;
  config.mode = mode;
  config.num_procs = 1;
  config.ec_check = ec_check;
  config.spans = spans;
  LatencyResult result;
  System system(config);
  system.Run([&](Runtime& rt) {
    auto data = MakeSharedArray<int64_t>(rt, elements);
    BarrierId done = rt.CreateBarrier();
    // Bind the written range so the benchmark is a *clean* program under the checker — the
    // checker-on row then measures pure shadow-tracking cost, not report formatting.
    // (Blast supports lock-bound data only; its rows run with the checker off.)
    if (mode == DetectionMode::kBlast) {
      rt.BindBarrier(done, {});
    } else {
      rt.BindBarrier(done, {data.WholeRange()});
    }
    // init-phase: untracked raw stores, legal only before BeginParallel
    for (int i = 0; i < elements; ++i) data.raw_mutable()[i] = 0;
    rt.BeginParallel();

    Stopwatch cold;
    for (int i = 0; i < elements; ++i) {
      data[i] = i;  // first touch: VM faults once per page
    }
    result.cold_ns = cold.ElapsedSeconds() * 1e9 / elements;

    Stopwatch warm;
    for (int r = 0; r < repeats; ++r) {
      for (int i = 0; i < elements; ++i) {
        data[i] = i + r;
      }
    }
    result.warm_ns = warm.ElapsedSeconds() * 1e9 / (static_cast<double>(elements) * repeats);
    rt.BarrierWait(done);
  });
  result.totals = system.Total();
  return result;
}

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  const int elements = static_cast<int>(options.GetInt("elements", opts.full ? 1 << 21 : 1 << 18));
  const int repeats = static_cast<int>(options.GetInt("repeats", 4));
  PrintHeader("Average write latency by detection strategy", opts);
  std::printf("elements=%d (%d KB of shared data), warm repeats=%d\n", elements,
              elements * 8 / 1024, repeats);

  const std::vector<DetectionMode> modes = {
      DetectionMode::kStandalone, DetectionMode::kBlast,      DetectionMode::kRt,
      DetectionMode::kRtTwoLevel, DetectionMode::kRtQueue,    DetectionMode::kRtHybrid,
      DetectionMode::kVmSoft,     DetectionMode::kVmSigsegv,
  };

  LatencyResult baseline = MeasureWrites(DetectionMode::kStandalone, elements, repeats);
  Table t({"Strategy", "cold ns/write", "warm ns/write", "warm overhead vs raw", "faults",
           "dirtybits set"});
  std::vector<std::pair<DetectionMode, LatencyResult>> results;
  for (DetectionMode mode : modes) {
    LatencyResult r = mode == DetectionMode::kStandalone
                          ? baseline
                          : MeasureWrites(mode, elements, repeats);
    results.emplace_back(mode, r);
    const double overhead =
        baseline.warm_ns > 0 ? (r.warm_ns / baseline.warm_ns - 1.0) * 100.0 : 0.0;
    t.AddRow({DetectionModeName(mode), Table::Fixed(r.cold_ns, 2), Table::Fixed(r.warm_ns, 2),
              Table::Fixed(overhead, 0) + "%", Table::Num(r.totals.write_faults),
              Table::Num(r.totals.dirtybits_set)});
  }
  std::printf("%s", t.Render().c_str());

  // Entry-consistency checker cost on the hottest path (rt mode). "off" is the compiled-in
  // hooks with the runtime flag disabled — the configuration everyone else in this table
  // ran with; "on" adds the shadow-memory bookkeeping per instrumented store.
  LatencyResult rt_off = MeasureWrites(DetectionMode::kRt, elements, repeats);
  Table ec({"ec-checker (rt mode)", "cold ns/write", "warm ns/write", "warm overhead vs raw"});
  const auto ec_row = [&](const char* name, const LatencyResult& r) {
    const double overhead =
        baseline.warm_ns > 0 ? (r.warm_ns / baseline.warm_ns - 1.0) * 100.0 : 0.0;
    ec.AddRow({name, Table::Fixed(r.cold_ns, 2), Table::Fixed(r.warm_ns, 2),
               Table::Fixed(overhead, 0) + "%"});
  };
  ec_row("off (runtime flag)", rt_off);
#ifdef MIDWAY_EC_CHECK
  LatencyResult rt_on = MeasureWrites(DetectionMode::kRt, elements, repeats, /*ec_check=*/true);
  ec_row("on (--ec-check)", rt_on);
  std::printf("%s", ec.Render().c_str());
  std::printf(
      "Checker hooks are compiled in (MIDWAY_EC_CHECK): the off row pays one predictable\n"
      "branch per NoteWrite; configure with -DMIDWAY_EC_CHECK=OFF to remove even that.\n");
#else
  std::printf("%s", ec.Render().c_str());
  std::printf(
      "Checker hooks are compiled out (-DMIDWAY_EC_CHECK=OFF): the off row IS the release\n"
      "hot path; no checker-on row is available in this build.\n");
#endif

  // Span observability cost on the same path. Spans time protocol sections (acquire wait,
  // grant build, barrier, collect), not individual stores, so the write path itself is
  // untouched; an enabled sink costs one predictable branch per protocol operation. The
  // --check-obs gate holds CI to that claim: spans-on warm latency must stay within 5% of
  // spans-off (best-of-3 to keep a scheduler hiccup from failing the build).
  const auto best_of_3 = [&](bool spans) {
    LatencyResult best = MeasureWrites(DetectionMode::kRt, elements, repeats,
                                       /*ec_check=*/false, spans);
    for (int i = 0; i < 2; ++i) {
      LatencyResult r = MeasureWrites(DetectionMode::kRt, elements, repeats,
                                      /*ec_check=*/false, spans);
      if (r.warm_ns < best.warm_ns) best = r;
    }
    return best;
  };
  const LatencyResult spans_off = best_of_3(false);
  const LatencyResult spans_on = best_of_3(true);
  Table sp({"spans (rt mode)", "cold ns/write", "warm ns/write", "warm overhead vs raw"});
  const auto sp_row = [&](const char* name, const LatencyResult& r) {
    const double overhead =
        baseline.warm_ns > 0 ? (r.warm_ns / baseline.warm_ns - 1.0) * 100.0 : 0.0;
    sp.AddRow({name, Table::Fixed(r.cold_ns, 2), Table::Fixed(r.warm_ns, 2),
               Table::Fixed(overhead, 0) + "%"});
  };
  sp_row("off (default)", spans_off);
  sp_row("on (--trace-out / --metrics-out)", spans_on);
  std::printf("%s", sp.Render().c_str());

  // Machine-readable output for the CI perf-smoke artifact (see EXPERIMENTS.md).
  const std::string json_path = options.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      json << "{\n  \"schema\": \"midway-write-latency/v1\",\n  \"elements\": " << elements
           << ",\n  \"repeats\": " << repeats << ",\n  \"modes\": [\n";
      for (size_t i = 0; i < results.size(); ++i) {
        const LatencyResult& r = results[i].second;
        const double overhead =
            baseline.warm_ns > 0 ? r.warm_ns / baseline.warm_ns - 1.0 : 0.0;
        json << "    {\"mode\": \"" << DetectionModeName(results[i].first)
             << "\", \"cold_ns_per_write\": " << r.cold_ns
             << ", \"warm_ns_per_write\": " << r.warm_ns
             << ", \"warm_overhead_vs_raw\": " << overhead
             << ", \"write_faults\": " << r.totals.write_faults
             << ", \"dirtybits_set\": " << r.totals.dirtybits_set << "}"
             << (i + 1 < results.size() ? "," : "") << "\n";
      }
      json << "  ],\n  \"spans\": {\"off_warm_ns_per_write\": " << spans_off.warm_ns
           << ", \"on_warm_ns_per_write\": " << spans_on.warm_ns << "}\n}\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  if (options.GetBool("check-obs", false)) {
    const double ratio = spans_off.warm_ns > 0 ? spans_on.warm_ns / spans_off.warm_ns : 1.0;
    if (ratio > 1.05) {
      std::fprintf(stderr,
                   "check-obs FAILED: spans-on warm write latency %.2f ns vs %.2f ns off "
                   "(%.1f%% > 5%% budget)\n",
                   spans_on.warm_ns, spans_off.warm_ns, (ratio - 1.0) * 100.0);
      std::exit(1);
    }
    std::printf("check-obs OK: spans-on warm write latency %.2f ns vs %.2f ns off (%+.1f%%)\n",
                spans_on.warm_ns, spans_off.warm_ns, (ratio - 1.0) * 100.0);
  }

  std::printf(
      "Expected shapes (paper 2/3.1): RT-DSM's warm latency is a small constant multiple of\n"
      "the raw store (the paper's 9-instruction sequence); the update queue costs the most\n"
      "of the RT family (~3x trapping); VM-DSM's warm pass matches raw (full speed after the\n"
      "fault) while its cold pass absorbs one fault per page — the amortization bet that\n"
      "pays off only when pages are written many times between synchronizations.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
