// Table 1: execution times for the primitive operations of both write detection schemes.
//
// The paper measured these on a 25 MHz MIPS R3000 under Mach 3.0; this binary measures the
// same primitives on the host (google-benchmark for detailed numbers, plus a Table-1-style
// summary comparing host-measured values against the paper's). The page write fault row is
// measured end to end through a real mprotect(2)-protected store and the SIGSEGV handler.
#include <benchmark/benchmark.h>

#include <cstring>

#include "src/common/stopwatch.h"
#include "src/common/table.h"
#include "src/core/midway.h"
#include "src/core/rt_strategy.h"
#include "src/core/sigsegv.h"
#include "src/core/vm_strategy.h"
#include "src/mem/diff.h"

namespace midway {
namespace {

constexpr size_t kRegionBytes = 1 << 20;
constexpr uint32_t kPage = 4096;

struct RtFixture {
  SystemConfig config;
  RegionTable regions;
  Counters counters;
  RtStrategy strategy;
  Region* shared;
  Region* priv;

  RtFixture() : strategy(config, &regions, &counters) {
    shared = regions.Create(kRegionBytes, /*line_size=*/8, /*shared=*/true);
    priv = regions.Create(kRegionBytes, /*line_size=*/8, /*shared=*/false);
    strategy.AttachRegion(shared);
    strategy.AttachRegion(priv);
  }
};

struct VmFixture {
  SystemConfig config;
  RegionTable regions;
  Counters counters;
  VmStrategy strategy;
  Region* shared;

  VmFixture()
      : strategy((config.page_size = kPage, config), &regions, &counters,
                 VmStrategy::TrapBackend::kSigsegv) {
    shared = regions.Create(kRegionBytes, /*line_size=*/8, /*shared=*/true);
    strategy.AttachRegion(shared);
    strategy.OnBeginParallel();  // protects all pages read-only
  }
};

// --- RT-DSM primitives ---------------------------------------------------------------------

void BM_DirtybitSetWord(benchmark::State& state) {
  RtFixture f;
  RegionHeader* header = f.shared->header();
  uint32_t offset = 0;
  for (auto _ : state) {
    f.strategy.NoteWrite(header, offset, 4);
    offset = (offset + 4) & (kRegionBytes - 1);
  }
}
BENCHMARK(BM_DirtybitSetWord);

void BM_DirtybitSetDoubleword(benchmark::State& state) {
  RtFixture f;
  RegionHeader* header = f.shared->header();
  uint32_t offset = 0;
  for (auto _ : state) {
    f.strategy.NoteWrite(header, offset, 8);
    offset = (offset + 8) & (kRegionBytes - 1);
  }
}
BENCHMARK(BM_DirtybitSetDoubleword);

void BM_DirtybitSetPrivate(benchmark::State& state) {
  RtFixture f;
  RegionHeader* header = f.priv->header();
  for (auto _ : state) {
    f.strategy.NoteWrite(header, 64, 8);
  }
}
BENCHMARK(BM_DirtybitSetPrivate);

void BM_DirtybitReadClean(benchmark::State& state) {
  RtFixture f;  // all lines clean
  DirtybitTable* db = f.shared->dirtybits();
  std::vector<DirtybitTable::DirtyLine> lines;
  const size_t n = db->num_lines();
  for (auto _ : state) {
    lines.clear();
    db->CollectRange(0, n - 1, /*since=*/0, /*stamp_ts=*/1, &lines);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DirtybitReadClean);

void BM_DirtybitReadDirty(benchmark::State& state) {
  RtFixture f;
  DirtybitTable* db = f.shared->dirtybits();
  const size_t n = db->num_lines();
  std::vector<DirtybitTable::DirtyLine> lines;
  lines.reserve(n);
  uint64_t ts = 1;
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < n; ++i) db->Store(i, ts + 1);  // all newer than `since`
    lines.clear();
    state.ResumeTiming();
    db->CollectRange(0, n - 1, /*since=*/ts, /*stamp_ts=*/ts + 2, &lines);
    ts += 2;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DirtybitReadDirty);

void BM_DirtybitUpdate(benchmark::State& state) {
  RtFixture f;
  DirtybitTable* db = f.shared->dirtybits();
  size_t line = 0;
  uint64_t ts = 1;
  for (auto _ : state) {
    db->Store(line, ts++);
    line = (line + 1) & (db->num_lines() - 1);
  }
}
BENCHMARK(BM_DirtybitUpdate);

// --- VM-DSM primitives ---------------------------------------------------------------------

void BM_PageWriteFault(benchmark::State& state) {
  VmFixture f;
  auto* data = reinterpret_cast<volatile uint64_t*>(f.shared->data());
  PageTable* table = f.strategy.page_table(f.shared->id());
  size_t page = 0;
  const size_t pages = table->num_pages();
  for (auto _ : state) {
    data[page * (kPage / 8)] = 1;  // store to a protected page -> SIGSEGV -> twin + unprotect
    state.PauseTiming();
    table->MarkClean(page);
    f.shared->ProtectDataRange(page * kPage, kPage, /*writable=*/false);
    page = (page + 1) % pages;
    state.ResumeTiming();
  }
}
BENCHMARK(BM_PageWriteFault);

void BM_PageDiffNoneChanged(benchmark::State& state) {
  std::vector<std::byte> a(kPage, std::byte{0x5A});
  std::vector<std::byte> b(kPage, std::byte{0x5A});
  for (auto _ : state) {
    auto runs = ComputeDiff(a, b);
    benchmark::DoNotOptimize(runs);
  }
}
BENCHMARK(BM_PageDiffNoneChanged);

void BM_PageDiffAllChanged(benchmark::State& state) {
  std::vector<std::byte> a(kPage, std::byte{0x5A});
  std::vector<std::byte> b(kPage, std::byte{0xA5});
  for (auto _ : state) {
    auto runs = ComputeDiff(a, b);
    benchmark::DoNotOptimize(runs);
  }
}
BENCHMARK(BM_PageDiffAllChanged);

void BM_PageDiffAlternating(benchmark::State& state) {
  // Every other word changed: the paper's worst case (maximum run count).
  std::vector<std::byte> a(kPage, std::byte{0x5A});
  std::vector<std::byte> b(kPage, std::byte{0x5A});
  for (size_t w = 0; w < kPage / 4; w += 2) {
    b[w * 4] = std::byte{0xA5};
  }
  for (auto _ : state) {
    auto runs = ComputeDiff(a, b);
    benchmark::DoNotOptimize(runs);
  }
}
BENCHMARK(BM_PageDiffAlternating);

void BM_PageProtectReadWrite(benchmark::State& state) {
  RtFixture f;  // unprotected region, toggle one page
  for (auto _ : state) {
    f.shared->ProtectDataRange(0, kPage, /*writable=*/true);
  }
}
BENCHMARK(BM_PageProtectReadWrite);

void BM_PageProtectReadOnly(benchmark::State& state) {
  RtFixture f;
  for (auto _ : state) {
    f.shared->ProtectDataRange(0, kPage, /*writable=*/false);
  }
  f.shared->ProtectDataRange(0, kPage, true);
}
BENCHMARK(BM_PageProtectReadOnly);

void BM_BlockCopyWarmPerKB(benchmark::State& state) {
  std::vector<std::byte> src(1024);
  std::vector<std::byte> dst(1024);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), 1024);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BlockCopyWarmPerKB);

void BM_BlockCopyColdPerKB(benchmark::State& state) {
  // Walk a buffer far larger than the last-level cache so every copy misses.
  constexpr size_t kBig = size_t{256} << 20;
  std::vector<std::byte> src(kBig);
  std::vector<std::byte> dst(1024);
  size_t at = 0;
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data() + at, 1024);
    benchmark::DoNotOptimize(dst.data());
    at = (at + (64 << 10)) % (kBig - 1024);
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BlockCopyColdPerKB);

// --- Table-1-style summary -------------------------------------------------------------------

template <typename Fn>
double MeasureUs(size_t iters, const Fn& fn) {
  Stopwatch watch;
  for (size_t i = 0; i < iters; ++i) {
    fn(i);
  }
  return watch.ElapsedMicros() / static_cast<double>(iters);
}

void PrintSummary() {
  const CostModel paper;  // defaults are the paper's Table 1 values
  CostModel host;

  {
    RtFixture f;
    RegionHeader* shared = f.shared->header();
    RegionHeader* priv = f.priv->header();
    host.dirtybit_set_us = MeasureUs(2'000'000, [&](size_t i) {
      f.strategy.NoteWrite(shared, static_cast<uint32_t>((i * 8) & (kRegionBytes - 1)), 8);
    });
    host.dirtybit_set_private_us =
        MeasureUs(2'000'000, [&](size_t i) { f.strategy.NoteWrite(priv, 64, 8); });
    DirtybitTable* db = f.shared->dirtybits();
    std::vector<DirtybitTable::DirtyLine> lines;
    const size_t n = db->num_lines();
    host.dirtybit_read_clean_us = MeasureUs(200, [&](size_t) {
                                    lines.clear();
                                    db->CollectRange(0, n - 1, 0, 1, &lines);
                                  }) /
                                  static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) db->Store(i, 10);
    lines.reserve(n);
    host.dirtybit_read_dirty_us = MeasureUs(200, [&](size_t it) {
                                    lines.clear();
                                    db->CollectRange(0, n - 1, 9, 11 + it, &lines);
                                  }) /
                                  static_cast<double>(n);
    host.dirtybit_update_us =
        MeasureUs(2'000'000, [&](size_t i) { db->Store(i & (n - 1), i + 100); });
  }
  {
    VmFixture f;
    auto* data = reinterpret_cast<volatile uint64_t*>(f.shared->data());
    PageTable* table = f.strategy.page_table(f.shared->id());
    const size_t pages = table->num_pages();
    // Fault time: store to protected page; subtract the re-protect cost measured separately.
    double cycle = MeasureUs(pages, [&](size_t i) {
      data[i * (kPage / 8)] = 1;
      table->MarkClean(i);
      f.shared->ProtectDataRange(i * kPage, kPage, false);
    });
    double protect = MeasureUs(1000, [&](size_t) {
      f.shared->ProtectDataRange(0, kPage, false);
    });
    host.protect_ro_us = protect;
    host.protect_rw_us =
        MeasureUs(1000, [&](size_t) { f.shared->ProtectDataRange(0, kPage, true); });
    host.page_fault_us = cycle - protect;
  }
  {
    std::vector<std::byte> a(kPage, std::byte{0x5A});
    std::vector<std::byte> same(kPage, std::byte{0x5A});
    std::vector<std::byte> alt(kPage, std::byte{0x5A});
    for (size_t w = 0; w < kPage / 4; w += 2) alt[w * 4] = std::byte{0xA5};
    host.page_diff_uniform_us = MeasureUs(5000, [&](size_t) {
      auto runs = ComputeDiff(a, same);
      benchmark::DoNotOptimize(runs);
    });
    host.page_diff_alternating_us = MeasureUs(2000, [&](size_t) {
      auto runs = ComputeDiff(a, alt);
      benchmark::DoNotOptimize(runs);
    });
    std::vector<std::byte> dst(1024);
    host.copy_warm_us_per_kb = MeasureUs(100000, [&](size_t) {
      std::memcpy(dst.data(), a.data(), 1024);
      benchmark::DoNotOptimize(dst.data());
    });
  }

  Table t({"System", "Primitive Operation", "Paper us (R3000)", "Host us (measured)"});
  t.AddRow({"RT-DSM", "dirtybit set (word/doubleword write)", Table::Micros(paper.dirtybit_set_us),
            Table::Micros(host.dirtybit_set_us)});
  t.AddRow({"", "dirtybit set (write to private memory)",
            Table::Micros(paper.dirtybit_set_private_us),
            Table::Micros(host.dirtybit_set_private_us)});
  t.AddRow({"", "dirtybit read (clean)", Table::Micros(paper.dirtybit_read_clean_us),
            Table::Micros(host.dirtybit_read_clean_us)});
  t.AddRow({"", "dirtybit read (dirty)", Table::Micros(paper.dirtybit_read_dirty_us),
            Table::Micros(host.dirtybit_read_dirty_us)});
  t.AddRow({"", "dirtybit write (update)", Table::Micros(paper.dirtybit_update_us),
            Table::Micros(host.dirtybit_update_us)});
  t.AddSeparator();
  t.AddRow({"VM-DSM", "page write fault (incl. twin + protect)",
            Table::Micros(paper.page_fault_us, 0), Table::Micros(host.page_fault_us)});
  t.AddRow({"", "page diff (none or all changed)", Table::Micros(paper.page_diff_uniform_us, 0),
            Table::Micros(host.page_diff_uniform_us)});
  t.AddRow({"", "page diff (every other word changed)",
            Table::Micros(paper.page_diff_alternating_us, 0),
            Table::Micros(host.page_diff_alternating_us)});
  t.AddRow({"", "page protect (read-write)", Table::Micros(paper.protect_rw_us, 0),
            Table::Micros(host.protect_rw_us)});
  t.AddRow({"", "page protect (read-only)", Table::Micros(paper.protect_ro_us, 0),
            Table::Micros(host.protect_ro_us)});
  t.AddRow({"", "block copy, warm cache (per KB)", Table::Micros(paper.copy_warm_us_per_kb, 0),
            Table::Micros(host.copy_warm_us_per_kb)});
  std::printf("\n=== Table 1: primitive operation costs ===\n%s", t.Render().c_str());
  std::printf("Relations to check against the paper: an instrumented store costs orders of\n"
              "magnitude less than a page fault; diffing a page costs ~page-size memory work;\n"
              "all VM primitives dwarf all RT primitives.\n");
}

}  // namespace
}  // namespace midway

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  midway::PrintSummary();
  return 0;
}
