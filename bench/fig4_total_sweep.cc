// Figure 4: the effect of varying the page fault cost on the *total* cost of write
// detection (trapping + collection). Unlike Figure 3, VM-DSM now carries its fixed
// collection cost (diff/protect/twin), so the break-even fault costs move left: the paper
// reports break-even at ~650 us for matrix-multiply and ~696 us for quicksort, with the
// medium/fine-grain applications never reaching break-even (RT-DSM dominates even with a
// free fault).
#include "bench/bench_util.h"
#include "src/core/cost_model.h"

namespace midway {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  PrintHeader("Figure 4: total write detection cost vs page fault cost", opts);

  CostModel model;
  auto rt = RunSuite(DetectionMode::kRt, opts);
  auto vm = RunSuite(DetectionMode::kVmSoft, opts);

  Table t({"Application", "RT total (ms)", "VM total @122us (ms)", "VM total @1200us (ms)",
           "break-even fault (us)", "who wins"});
  for (const std::string& app : AppNames()) {
    const auto& rt_counts = rt.at(app).per_proc;
    const auto& vm_counts = vm.at(app).per_proc;
    const double rt_ms = model.RtDetectionMs(rt_counts);
    const double vm_fast = model.VmDetectionMs(vm_counts, model.page_fault_fast_us);
    const double vm_mach = model.VmDetectionMs(vm_counts, model.page_fault_us);
    const double be = model.BreakEvenTotalFaultUs(rt_counts, vm_counts);
    std::string verdict;
    if (be < model.page_fault_fast_us) {
      verdict = "RT (even with free faults)";
    } else if (be > model.page_fault_us) {
      verdict = "VM (even with Mach faults)";
    } else {
      verdict = "depends on exception cost";
    }
    t.AddRow({app, Table::Fixed(rt_ms), Table::Fixed(vm_fast), Table::Fixed(vm_mach),
              Table::Fixed(be, 0), verdict});
  }
  std::printf("%s", t.Render().c_str());

  std::printf("\nSeries: VM total detection (ms) at fault costs 122..1200 us vs RT constant\n");
  std::vector<std::string> header = {"fault us"};
  for (const std::string& app : AppNames()) header.push_back("VM:" + app);
  for (const std::string& app : AppNames()) header.push_back("RT:" + app);
  Table s(header);
  for (double fault = 122; fault <= 1200 + 1; fault += (1200.0 - 122.0) / 10) {
    std::vector<std::string> cells = {Table::Fixed(fault, 0)};
    for (const std::string& app : AppNames()) {
      cells.push_back(Table::Fixed(model.VmDetectionMs(vm.at(app).per_proc, fault)));
    }
    for (const std::string& app : AppNames()) {
      cells.push_back(Table::Fixed(model.RtDetectionMs(rt.at(app).per_proc)));
    }
    s.AddRow(std::move(cells));
  }
  std::printf("%s", s.Render().c_str());

  // Optional plot-ready CSV (--csv=<dir>): fault_us, VM:<app>..., RT:<app>... .
  {
    std::vector<std::string> csv_header = {"fault_us"};
    for (const std::string& app : AppNames()) csv_header.push_back("vm_" + app);
    for (const std::string& app : AppNames()) csv_header.push_back("rt_" + app);
    std::vector<std::vector<double>> csv_rows;
    for (double fault = 122; fault <= 1200 + 1; fault += (1200.0 - 122.0) / 50) {
      std::vector<double> row = {fault};
      for (const std::string& app : AppNames()) {
        row.push_back(model.VmDetectionMs(vm.at(app).per_proc, fault));
      }
      for (const std::string& app : AppNames()) {
        row.push_back(model.RtDetectionMs(rt.at(app).per_proc));
      }
      csv_rows.push_back(std::move(row));
    }
    MaybeWriteCsv(options, "fig4_total", csv_header, csv_rows);
  }
  std::printf("Paper's finding: collection is the dominant component — even with an optimized\n"
              "exception handler, RT-DSM dominates for the medium/fine-grain applications;\n"
              "quicksort favors VM-DSM (rebinding avoids diffing); matmul sits near the line.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
