// Reliability-layer overhead: every application under (a) the raw in-process transport,
// (b) the reliable channel over a fault-free FaultyTransport (pure protocol overhead:
// sequencing, acks, retransmit bookkeeping), and (c) the reliable channel over a lossy
// network (10% drop, 5% duplication) where retransmission actually has to earn its keep.
#include "bench/bench_util.h"
#include "src/net/faulty_transport.h"

namespace midway {
namespace bench {
namespace {

std::map<std::string, AppReport> RunFaultySuite(DetectionMode mode, const SuiteOptions& opts,
                                                const FaultProfile& profile) {
  std::map<std::string, AppReport> reports;
  for (const std::string& app : AppNames()) {
    SystemConfig config;
    config.mode = mode;
    config.num_procs = opts.procs;
    config.transport = TransportKind::kFaulty;
    config.fault = profile;
    AppReport report = RunAppByName(app, config, opts.full);
    if (!report.verified) {
      std::fprintf(stderr, "WARNING: %s did not verify under fault seed %llu\n", app.c_str(),
                   static_cast<unsigned long long>(profile.seed));
    }
    reports[app] = std::move(report);
  }
  return reports;
}

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  const uint64_t seed = static_cast<uint64_t>(options.GetInt("seed", 12345));
  const auto mode = DetectionMode::kRt;
  PrintHeader("Reliability-layer overhead (RT-DSM)", opts);

  opts.transport = TransportKind::kInProc;
  auto raw = RunSuite(mode, opts);
  FaultProfile clean;  // zero rates: the reliable channel runs but never retransmits
  clean.seed = seed;
  auto reliable = RunFaultySuite(mode, opts, clean);
  auto lossy = RunFaultySuite(mode, opts, FaultProfile::Lossy(seed));

  auto ratio = [](double num, double den) {
    return den > 0 ? Table::Fixed(num / den, 2) + "x" : std::string("-");
  };
  Table t({"App", "raw (s)", "reliable (s)", "overhead", "lossy 10%/5% (s)", "slowdown",
           "retransmits/proc", "dup drops/proc"});
  for (const std::string& app : AppNames()) {
    const AppReport& a = raw.at(app);
    const AppReport& b = reliable.at(app);
    const AppReport& c = lossy.at(app);
    t.AddRow({app, Table::Fixed(a.elapsed_sec, 3), Table::Fixed(b.elapsed_sec, 3),
              ratio(b.elapsed_sec, a.elapsed_sec), Table::Fixed(c.elapsed_sec, 3),
              ratio(c.elapsed_sec, a.elapsed_sec),
              Table::Num(c.per_proc.rel_retransmits), Table::Num(c.per_proc.rel_dup_dropped)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf("seed=%llu; 'overhead' is the fault-free reliable channel vs the raw transport,\n"
              "'slowdown' adds 10%% drop + 5%% duplication on top.\n",
              static_cast<unsigned long long>(seed));

  std::vector<std::vector<double>> rows;
  for (const std::string& app : AppNames()) {
    rows.push_back({raw.at(app).elapsed_sec, reliable.at(app).elapsed_sec,
                    lossy.at(app).elapsed_sec,
                    static_cast<double>(lossy.at(app).per_proc.rel_retransmits)});
  }
  MaybeWriteCsv(options, "faulty_overhead", {"raw_sec", "reliable_sec", "lossy_sec",
                                             "retransmits_per_proc"}, rows);
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) { midway::bench::Run(argc, argv); }
