// Scale-out curve: synchronization-op throughput vs node count, over the five benchmark
// applications with hash-sharded lock homes (src/core/shard.h). The point of the curve is
// the coordination structure, not raw speed: with homes and recovery coordination spread by
// consistent hashing, adding nodes must not collapse into a single-home bottleneck the way
// the old node-0 pinning did.
//
// `--check` turns the run into a smoke gate: it exits nonzero when any app fails its golden
// verification at any node count (the 64-node run included), when aggregate sync-op
// throughput at the largest count drops below --min-retention x the per-node throughput at
// the smallest (coordinator collapse), when the send path copies payload bytes (must stay
// zero-copy under RT), or when the TCP probe's receive-side reassembly copies stop looking
// like header fragments and start looking like whole payloads. `--json=<path>` writes
// BENCH_scaleout.json (schema midway-scaleout/v1, documented in EXPERIMENTS.md). Span
// histograms (PR 5) attribute per-phase latency at every node count.
#include <cinttypes>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"

namespace midway {
namespace bench {
namespace {

// The protocol phases worth attributing at scale (subset of obs::SpanKind: the sync-path
// ones; checkpoint/recovery kinds stay zero in a crash-free bench).
const std::vector<obs::SpanKind>& AttributedSpans() {
  static const std::vector<obs::SpanKind> kinds = {
      obs::SpanKind::kAcquireWait, obs::SpanKind::kGrantBuild, obs::SpanKind::kGrantApply,
      obs::SpanKind::kBarrierWait, obs::SpanKind::kBarrierApply, obs::SpanKind::kCollect,
      obs::SpanKind::kWireSend,
  };
  return kinds;
}

struct AppPoint {
  std::string name;
  bool verified = false;
  double elapsed_sec = 0;
  uint64_t sync_ops = 0;  // lock_acquires + barrier_crossings, summed over nodes
  uint64_t lock_acquires = 0;
  uint64_t barrier_crossings = 0;
};

struct SpanPoint {
  std::string name;
  uint64_t count = 0;
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

struct CurvePoint {
  uint16_t nodes = 0;
  std::vector<AppPoint> apps;
  std::vector<SpanPoint> spans;
  uint64_t sync_ops = 0;
  double elapsed_sec = 0;         // summed over apps (sequential suite)
  double sync_ops_per_sec = 0;    // aggregate
  double per_node_ops_per_sec = 0;
  uint64_t payload_bytes_copied = 0;
  uint64_t recv_bytes_copied = 0;
  uint64_t wire_bytes = 0;
  bool all_verified = false;
};

CurvePoint RunPoint(uint16_t nodes, TransportKind transport) {
  CurvePoint point;
  point.nodes = nodes;
  point.all_verified = true;
  std::array<obs::HistogramSnapshot, obs::kNumSpanKinds> spans{};
  for (const std::string& app : AppNames()) {
    SystemConfig config;
    config.mode = DetectionMode::kRt;
    config.num_procs = nodes;
    config.transport = transport;
    config.spans = true;
    AppReport report = RunAppByName(app, config, /*full_scale=*/false);
    AppPoint ap;
    ap.name = app;
    ap.verified = report.verified;
    ap.elapsed_sec = report.elapsed_sec;
    ap.lock_acquires = report.total.lock_acquires;
    ap.barrier_crossings = report.total.barrier_crossings;
    ap.sync_ops = ap.lock_acquires + ap.barrier_crossings;
    point.apps.push_back(ap);
    point.sync_ops += ap.sync_ops;
    point.elapsed_sec += ap.elapsed_sec;
    point.payload_bytes_copied += report.total.payload_bytes_copied;
    point.recv_bytes_copied += report.recv_bytes_copied;
    point.wire_bytes += report.wire_bytes;
    point.all_verified = point.all_verified && ap.verified;
    for (size_t k = 0; k < obs::kNumSpanKinds; ++k) spans[k] += report.spans[k];
  }
  point.sync_ops_per_sec =
      point.elapsed_sec > 0 ? static_cast<double>(point.sync_ops) / point.elapsed_sec : 0;
  point.per_node_ops_per_sec = point.sync_ops_per_sec / nodes;
  for (obs::SpanKind kind : AttributedSpans()) {
    const obs::HistogramSnapshot& h = spans[static_cast<size_t>(kind)];
    SpanPoint sp;
    sp.name = obs::SpanKindName(kind);
    sp.count = h.count;
    sp.mean_ns = h.MeanNs();
    sp.p50_ns = h.ApproxPercentileNs(0.5);
    sp.p99_ns = h.ApproxPercentileNs(0.99);
    point.spans.push_back(sp);
  }
  return point;
}

std::vector<uint16_t> ParseNodeCounts(const std::string& arg) {
  std::vector<uint16_t> counts;
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int n = std::stoi(tok);
    if (n > 0) counts.push_back(static_cast<uint16_t>(n));
  }
  return counts;
}

void WriteJson(const std::string& path, const std::vector<CurvePoint>& curve,
               const CurvePoint* tcp_probe, bool checks_passed) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto emit_point = [&](const CurvePoint& p, const char* indent) {
    out << indent << "{\"nodes\": " << p.nodes << ", \"sync_ops\": " << p.sync_ops
        << ", \"elapsed_sec\": " << p.elapsed_sec
        << ", \"sync_ops_per_sec\": " << p.sync_ops_per_sec
        << ", \"per_node_ops_per_sec\": " << p.per_node_ops_per_sec
        << ", \"payload_bytes_copied\": " << p.payload_bytes_copied
        << ", \"recv_bytes_copied\": " << p.recv_bytes_copied
        << ", \"wire_bytes\": " << p.wire_bytes
        << ", \"all_verified\": " << (p.all_verified ? "true" : "false") << ",\n";
    out << indent << " \"apps\": [";
    for (size_t i = 0; i < p.apps.size(); ++i) {
      const AppPoint& a = p.apps[i];
      out << (i ? ", " : "") << "{\"name\": \"" << a.name
          << "\", \"verified\": " << (a.verified ? "true" : "false")
          << ", \"elapsed_sec\": " << a.elapsed_sec << ", \"sync_ops\": " << a.sync_ops
          << ", \"lock_acquires\": " << a.lock_acquires
          << ", \"barrier_crossings\": " << a.barrier_crossings << "}";
    }
    out << "],\n" << indent << " \"spans\": [";
    for (size_t i = 0; i < p.spans.size(); ++i) {
      const SpanPoint& s = p.spans[i];
      out << (i ? ", " : "") << "{\"name\": \"" << s.name << "\", \"count\": " << s.count
          << ", \"mean_ns\": " << s.mean_ns << ", \"p50_ns\": " << s.p50_ns
          << ", \"p99_ns\": " << s.p99_ns << "}";
    }
    out << "]}";
  };
  out << "{\n  \"schema\": \"midway-scaleout/v1\",\n  \"mode\": \"RT\",\n  \"points\": [\n";
  for (size_t i = 0; i < curve.size(); ++i) {
    emit_point(curve[i], "    ");
    out << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  if (tcp_probe != nullptr) {
    out << "  \"tcp_probe\":\n";
    emit_point(*tcp_probe, "    ");
    out << ",\n";
  }
  out << "  \"checks_passed\": " << (checks_passed ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  const bool check = options.GetBool("check");
  const double min_retention = options.GetDouble("min-retention", 0.8);
  const std::vector<uint16_t> counts =
      ParseNodeCounts(options.GetString("nodes", "8,16,32,64"));
  const bool tcp = options.GetBool("tcp-probe", true);
  PrintHeader("Scale-out: sync-op throughput vs node count", opts);

  std::vector<CurvePoint> curve;
  Table t({"nodes", "sync ops", "elapsed s", "ops/s", "ops/s/node", "payload copied",
           "recv copied", "verified"});
  for (uint16_t nodes : counts) {
    CurvePoint p = RunPoint(nodes, TransportKind::kInProc);
    t.AddRow({std::to_string(p.nodes), Table::Num(p.sync_ops), Table::Fixed(p.elapsed_sec, 3),
              Table::Fixed(p.sync_ops_per_sec, 0), Table::Fixed(p.per_node_ops_per_sec, 0),
              Table::Num(p.payload_bytes_copied), Table::Num(p.recv_bytes_copied),
              p.all_verified ? "yes" : "NO"});
    curve.push_back(std::move(p));
  }
  std::printf("%s", t.Render().c_str());

  // Per-phase latency attribution at the largest node count.
  if (!curve.empty()) {
    const CurvePoint& top = curve.back();
    Table st({"span @" + std::to_string(top.nodes) + " nodes", "count", "mean us", "p50 us",
              "p99 us"});
    for (const SpanPoint& s : top.spans) {
      st.AddRow({s.name, Table::Num(s.count), Table::Fixed(s.mean_ns / 1e3, 1),
                 Table::Fixed(s.p50_ns / 1e3, 1), Table::Fixed(s.p99_ns / 1e3, 1)});
    }
    std::printf("%s\n", st.Render().c_str());
  }

  // TCP probe: one small run over real sockets so the receive-side copy counter measures
  // the event loop's frame reassembly (inproc transports hand over owned packets; their
  // recv_bytes_copied is zero by construction).
  CurvePoint tcp_probe;
  if (tcp) {
    tcp_probe = RunPoint(/*nodes=*/8, TransportKind::kTcp);
    std::printf("tcp probe @8 nodes: wire %" PRIu64 " B, recv reassembly copies %" PRIu64
                " B (%.2f%%), verified %s\n\n",
                tcp_probe.wire_bytes, tcp_probe.recv_bytes_copied,
                tcp_probe.wire_bytes > 0
                    ? 100.0 * static_cast<double>(tcp_probe.recv_bytes_copied) /
                          static_cast<double>(tcp_probe.wire_bytes)
                    : 0.0,
                tcp_probe.all_verified ? "yes" : "NO");
  }

  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what.c_str());
    ++failures;
  };
  for (const CurvePoint& p : curve) {
    if (!p.all_verified) {
      fail(std::to_string(p.nodes) + " nodes: app verification failed");
    }
    if (p.payload_bytes_copied != 0) {
      fail(std::to_string(p.nodes) + " nodes: send path copied " +
           std::to_string(p.payload_bytes_copied) + " payload bytes (want 0 under RT)");
    }
    if (p.recv_bytes_copied != 0) {
      fail(std::to_string(p.nodes) + " nodes: inproc transport reported " +
           std::to_string(p.recv_bytes_copied) + " receive-copy bytes (want 0)");
    }
  }
  if (curve.size() >= 2) {
    const CurvePoint& lo = curve.front();
    const CurvePoint& hi = curve.back();
    // The collapse gate: aggregate throughput at the largest count must retain at least
    // min-retention of the smallest count's per-node throughput. A coordination hot spot
    // (all homes on one node) fails this by orders of magnitude; mere per-node slowdown
    // from oversubscription does not.
    const double floor = min_retention * lo.per_node_ops_per_sec;
    if (hi.sync_ops_per_sec < floor) {
      fail("throughput collapse: " + std::to_string(hi.sync_ops_per_sec) + " ops/s at " +
           std::to_string(hi.nodes) + " nodes < " + std::to_string(floor) + " (" +
           std::to_string(min_retention) + " x per-node throughput at " +
           std::to_string(lo.nodes) + ")");
    }
  }
  if (tcp) {
    if (!tcp_probe.all_verified) fail("tcp probe: app verification failed");
    // Reassembly copies are fragments of frames that straddled a 64 KiB pooled buffer —
    // a boundary tax, not a per-byte cost. If they rival the wire volume, the zero-copy
    // receive path has regressed into a copy-everything path.
    if (tcp_probe.recv_bytes_copied * 4 > tcp_probe.wire_bytes) {
      fail("tcp probe: receive path copied " + std::to_string(tcp_probe.recv_bytes_copied) +
           " of " + std::to_string(tcp_probe.wire_bytes) +
           " wire bytes; straddle reassembly should be a small fraction");
    }
  }

  const std::string json = options.GetString("json", "");
  if (!json.empty()) WriteJson(json, curve, tcp ? &tcp_probe : nullptr, failures == 0);
  if (check) {
    if (failures > 0) {
      std::fprintf(stderr, "scaleout --check: %d failure(s)\n", failures);
      std::exit(1);
    }
    std::printf("scaleout --check: all gates passed\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
