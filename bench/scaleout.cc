// Scale-out curve: synchronization-op throughput vs node count, over the five benchmark
// applications with hash-sharded lock homes (src/core/shard.h). The point of the curve is
// the coordination structure, not raw speed: with homes and recovery coordination spread by
// consistent hashing, adding nodes must not collapse into a single-home bottleneck the way
// the old node-0 pinning did.
//
// `--check` turns the run into a smoke gate: it exits nonzero when any app fails its golden
// verification at any node count (the 64-node run included), when aggregate sync-op
// throughput at the largest count drops below --min-retention x the per-node throughput at
// the smallest (coordinator collapse), when the send path copies payload bytes (must stay
// zero-copy under RT), or when the TCP probe's receive-side reassembly copies stop looking
// like header fragments and start looking like whole payloads. `--json=<path>` writes
// BENCH_scaleout.json (schema midway-scaleout/v1, documented in EXPERIMENTS.md). Span
// histograms (PR 5) attribute per-phase latency at every node count.
#include <cinttypes>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"

namespace midway {
namespace bench {
namespace {

// The protocol phases worth attributing at scale (subset of obs::SpanKind: the sync-path
// ones; checkpoint/recovery kinds stay zero in a crash-free bench).
const std::vector<obs::SpanKind>& AttributedSpans() {
  static const std::vector<obs::SpanKind> kinds = {
      obs::SpanKind::kAcquireWait, obs::SpanKind::kGrantBuild, obs::SpanKind::kGrantApply,
      obs::SpanKind::kBarrierWait, obs::SpanKind::kBarrierApply, obs::SpanKind::kCollect,
      obs::SpanKind::kWireSend,
  };
  return kinds;
}

struct AppPoint {
  std::string name;
  bool verified = false;
  double elapsed_sec = 0;
  uint64_t sync_ops = 0;  // lock_acquires + barrier_crossings, summed over nodes
  uint64_t lock_acquires = 0;
  uint64_t barrier_crossings = 0;
};

struct SpanPoint {
  std::string name;
  uint64_t count = 0;
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

struct CurvePoint {
  uint16_t nodes = 0;
  std::vector<AppPoint> apps;
  std::vector<SpanPoint> spans;
  uint64_t sync_ops = 0;
  double elapsed_sec = 0;         // summed over apps (sequential suite)
  double sync_ops_per_sec = 0;    // aggregate
  double per_node_ops_per_sec = 0;
  uint64_t payload_bytes_copied = 0;
  uint64_t recv_bytes_copied = 0;
  uint64_t wire_bytes = 0;
  bool all_verified = false;
};

CurvePoint RunPoint(uint16_t nodes, TransportKind transport) {
  CurvePoint point;
  point.nodes = nodes;
  point.all_verified = true;
  std::array<obs::HistogramSnapshot, obs::kNumSpanKinds> spans{};
  for (const std::string& app : AppNames()) {
    SystemConfig config;
    config.mode = DetectionMode::kRt;
    config.num_procs = nodes;
    config.transport = transport;
    config.spans = true;
    AppReport report = RunAppByName(app, config, /*full_scale=*/false);
    AppPoint ap;
    ap.name = app;
    ap.verified = report.verified;
    ap.elapsed_sec = report.elapsed_sec;
    ap.lock_acquires = report.total.lock_acquires;
    ap.barrier_crossings = report.total.barrier_crossings;
    ap.sync_ops = ap.lock_acquires + ap.barrier_crossings;
    point.apps.push_back(ap);
    point.sync_ops += ap.sync_ops;
    point.elapsed_sec += ap.elapsed_sec;
    point.payload_bytes_copied += report.total.payload_bytes_copied;
    point.recv_bytes_copied += report.recv_bytes_copied;
    point.wire_bytes += report.wire_bytes;
    point.all_verified = point.all_verified && ap.verified;
    for (size_t k = 0; k < obs::kNumSpanKinds; ++k) spans[k] += report.spans[k];
  }
  point.sync_ops_per_sec =
      point.elapsed_sec > 0 ? static_cast<double>(point.sync_ops) / point.elapsed_sec : 0;
  point.per_node_ops_per_sec = point.sync_ops_per_sec / nodes;
  for (obs::SpanKind kind : AttributedSpans()) {
    const obs::HistogramSnapshot& h = spans[static_cast<size_t>(kind)];
    SpanPoint sp;
    sp.name = obs::SpanKindName(kind);
    sp.count = h.count;
    sp.mean_ns = h.MeanNs();
    sp.p50_ns = h.ApproxPercentileNs(0.5);
    sp.p99_ns = h.ApproxPercentileNs(0.99);
    point.spans.push_back(sp);
  }
  return point;
}

// --- Barrier phase: k-ary tree vs star ----------------------------------------------------
//
// The decentralized barrier's claim is structural: with a fanout-k reduction/broadcast tree
// the root merges k combined enters instead of N-1 singletons, and the merged release is
// built once and relayed, not built N times. Setting barrier_fanout >= N-1 degenerates the
// tree into exactly the old centralized star (every node a child of the root), so the same
// binary measures both shapes and `--check` gates the tree against its own baseline.

struct BarrierPhasePoint {
  uint32_t fanout = 0;
  int rounds = 0;
  bool verified = false;
  double elapsed_sec = 0;
  uint64_t barrier_crossings = 0;
  uint64_t release_builds = 0;
  uint64_t enter_forwards = 0;
  double wait_mean_ns = 0;
  uint64_t wait_p50_ns = 0;
  uint64_t wait_p99_ns = 0;
};

BarrierPhasePoint RunBarrierPhase(uint16_t nodes, uint32_t fanout, int rounds) {
  BarrierPhasePoint point;
  point.fanout = fanout;
  point.rounds = rounds;
  SystemConfig config;
  config.mode = DetectionMode::kRt;
  config.num_procs = nodes;
  config.spans = true;
  config.barrier_fanout = fanout;
  const int n = nodes * 2;
  std::vector<uint8_t> ok(nodes, 0);
  System system(config);
  Stopwatch watch;
  system.Run([&](Runtime& rt) {
    auto data = MakeSharedArray<int64_t>(rt, n);
    BarrierId step = rt.CreateBarrier();
    rt.BindBarrier(step, {data.WholeRange()});
    rt.BeginParallel();
    for (int round = 0; round < rounds; ++round) {
      const int i = rt.self() * 2;
      data[i] = data.Get(i) + round + 1;
      data[i + 1] = data.Get(i + 1) + rt.self();
      rt.BarrierWait(step);
    }
    // Every slice must show every round's writes from every node: the merged releases
    // actually carried the data, round after round.
    bool good = true;
    for (NodeId peer = 0; peer < nodes; ++peer) {
      const int64_t want_even = static_cast<int64_t>(rounds) * (rounds + 1) / 2;
      const int64_t want_odd = static_cast<int64_t>(rounds) * peer;
      good = good && data.Get(peer * 2) == want_even && data.Get(peer * 2 + 1) == want_odd;
    }
    ok[rt.self()] = good ? 1 : 0;
  });
  point.elapsed_sec = watch.ElapsedSeconds();
  point.verified = true;
  for (uint8_t v : ok) point.verified = point.verified && v != 0;
  const CounterSnapshot total = system.Total();
  point.barrier_crossings = total.barrier_crossings;
  point.release_builds = total.barrier_release_builds;
  point.enter_forwards = total.barrier_enter_forwards;
  const obs::HistogramSnapshot wait =
      system.MergedSpan(obs::SpanKind::kBarrierWait);
  point.wait_mean_ns = wait.MeanNs();
  point.wait_p50_ns = wait.ApproxPercentileNs(0.5);
  point.wait_p99_ns = wait.ApproxPercentileNs(0.99);
  return point;
}

std::vector<uint16_t> ParseNodeCounts(const std::string& arg) {
  std::vector<uint16_t> counts;
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int n = std::stoi(tok);
    if (n > 0) counts.push_back(static_cast<uint16_t>(n));
  }
  return counts;
}

void EmitBarrierPhase(std::ostream& out, const BarrierPhasePoint& p, const char* indent) {
  out << indent << "{\"fanout\": " << p.fanout << ", \"rounds\": " << p.rounds
      << ", \"verified\": " << (p.verified ? "true" : "false")
      << ", \"elapsed_sec\": " << p.elapsed_sec
      << ", \"barrier_crossings\": " << p.barrier_crossings
      << ", \"release_builds\": " << p.release_builds
      << ", \"enter_forwards\": " << p.enter_forwards
      << ", \"wait_mean_ns\": " << p.wait_mean_ns << ", \"wait_p50_ns\": " << p.wait_p50_ns
      << ", \"wait_p99_ns\": " << p.wait_p99_ns << "}";
}

void WriteJson(const std::string& path, const std::vector<CurvePoint>& curve,
               const CurvePoint* tcp_probe, uint16_t barrier_nodes,
               const BarrierPhasePoint* tree, const BarrierPhasePoint* star,
               bool checks_passed) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto emit_point = [&](const CurvePoint& p, const char* indent) {
    out << indent << "{\"nodes\": " << p.nodes << ", \"sync_ops\": " << p.sync_ops
        << ", \"elapsed_sec\": " << p.elapsed_sec
        << ", \"sync_ops_per_sec\": " << p.sync_ops_per_sec
        << ", \"per_node_ops_per_sec\": " << p.per_node_ops_per_sec
        << ", \"payload_bytes_copied\": " << p.payload_bytes_copied
        << ", \"recv_bytes_copied\": " << p.recv_bytes_copied
        << ", \"wire_bytes\": " << p.wire_bytes
        << ", \"all_verified\": " << (p.all_verified ? "true" : "false") << ",\n";
    out << indent << " \"apps\": [";
    for (size_t i = 0; i < p.apps.size(); ++i) {
      const AppPoint& a = p.apps[i];
      out << (i ? ", " : "") << "{\"name\": \"" << a.name
          << "\", \"verified\": " << (a.verified ? "true" : "false")
          << ", \"elapsed_sec\": " << a.elapsed_sec << ", \"sync_ops\": " << a.sync_ops
          << ", \"lock_acquires\": " << a.lock_acquires
          << ", \"barrier_crossings\": " << a.barrier_crossings << "}";
    }
    out << "],\n" << indent << " \"spans\": [";
    for (size_t i = 0; i < p.spans.size(); ++i) {
      const SpanPoint& s = p.spans[i];
      out << (i ? ", " : "") << "{\"name\": \"" << s.name << "\", \"count\": " << s.count
          << ", \"mean_ns\": " << s.mean_ns << ", \"p50_ns\": " << s.p50_ns
          << ", \"p99_ns\": " << s.p99_ns << "}";
    }
    out << "]}";
  };
  out << "{\n  \"schema\": \"midway-scaleout/v1\",\n  \"mode\": \"RT\",\n  \"points\": [\n";
  for (size_t i = 0; i < curve.size(); ++i) {
    emit_point(curve[i], "    ");
    out << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  if (tcp_probe != nullptr) {
    out << "  \"tcp_probe\":\n";
    emit_point(*tcp_probe, "    ");
    out << ",\n";
  }
  if (tree != nullptr && star != nullptr) {
    out << "  \"barrier_phase\": {\"nodes\": " << barrier_nodes << ",\n    \"tree\":\n";
    EmitBarrierPhase(out, *tree, "    ");
    out << ",\n    \"star\":\n";
    EmitBarrierPhase(out, *star, "    ");
    out << ",\n    \"wait_mean_ratio\": "
        << (star->wait_mean_ns > 0 ? tree->wait_mean_ns / star->wait_mean_ns : 0.0)
        << ",\n    \"wait_p99_ratio\": "
        << (star->wait_p99_ns > 0
                ? static_cast<double>(tree->wait_p99_ns) / static_cast<double>(star->wait_p99_ns)
                : 0.0)
        << "\n  },\n";
  }
  out << "  \"checks_passed\": " << (checks_passed ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  const bool check = options.GetBool("check");
  const double min_retention = options.GetDouble("min-retention", 0.8);
  const std::vector<uint16_t> counts =
      ParseNodeCounts(options.GetString("nodes", "8,16,32,64"));
  const bool tcp = options.GetBool("tcp-probe", true);
  PrintHeader("Scale-out: sync-op throughput vs node count", opts);

  std::vector<CurvePoint> curve;
  Table t({"nodes", "sync ops", "elapsed s", "ops/s", "ops/s/node", "payload copied",
           "recv copied", "verified"});
  for (uint16_t nodes : counts) {
    CurvePoint p = RunPoint(nodes, TransportKind::kInProc);
    t.AddRow({std::to_string(p.nodes), Table::Num(p.sync_ops), Table::Fixed(p.elapsed_sec, 3),
              Table::Fixed(p.sync_ops_per_sec, 0), Table::Fixed(p.per_node_ops_per_sec, 0),
              Table::Num(p.payload_bytes_copied), Table::Num(p.recv_bytes_copied),
              p.all_verified ? "yes" : "NO"});
    curve.push_back(std::move(p));
  }
  std::printf("%s", t.Render().c_str());

  // Per-phase latency attribution at the largest node count.
  if (!curve.empty()) {
    const CurvePoint& top = curve.back();
    Table st({"span @" + std::to_string(top.nodes) + " nodes", "count", "mean us", "p50 us",
              "p99 us"});
    for (const SpanPoint& s : top.spans) {
      st.AddRow({s.name, Table::Num(s.count), Table::Fixed(s.mean_ns / 1e3, 1),
                 Table::Fixed(s.p50_ns / 1e3, 1), Table::Fixed(s.p99_ns / 1e3, 1)});
    }
    std::printf("%s\n", st.Render().c_str());
  }

  // TCP probe: one small run over real sockets so the receive-side copy counter measures
  // the event loop's frame reassembly (inproc transports hand over owned packets; their
  // recv_bytes_copied is zero by construction).
  CurvePoint tcp_probe;
  if (tcp) {
    tcp_probe = RunPoint(/*nodes=*/8, TransportKind::kTcp);
    std::printf("tcp probe @8 nodes: wire %" PRIu64 " B, recv reassembly copies %" PRIu64
                " B (%.2f%%), verified %s\n\n",
                tcp_probe.wire_bytes, tcp_probe.recv_bytes_copied,
                tcp_probe.wire_bytes > 0
                    ? 100.0 * static_cast<double>(tcp_probe.recv_bytes_copied) /
                          static_cast<double>(tcp_probe.wire_bytes)
                    : 0.0,
                tcp_probe.all_verified ? "yes" : "NO");
  }

  // Barrier phase at the largest node count: same workload, tree fanout vs the degenerate
  // star (fanout >= N-1 reproduces the old centralized manager's topology exactly).
  const int barrier_rounds = options.GetInt("barrier-rounds", 64);
  // The mean is the primary latency gate: it is continuous, so "tree no worse than star"
  // holds run-to-run within scheduling noise. The p99 comes from power-of-2 histogram
  // buckets, so two statistically-equal distributions can read a 2x apart when samples
  // straddle a boundary — its gate gets exactly one bucket of headroom.
  const double max_mean_ratio = options.GetDouble("max-barrier-mean-ratio", 1.25);
  const double max_p99_ratio = options.GetDouble("max-barrier-p99-ratio", 2.0);
  const uint16_t barrier_nodes = counts.empty() ? 64 : counts.back();
  const uint32_t tree_fanout = SystemConfig{}.barrier_fanout;
  // The runtime's internal startup barrier (BeginParallel) rides the same tree and shows
  // up in the counters; a zero-round run isolates that fixed cost so the gate can demand
  // exactly one merge per application round.
  const BarrierPhasePoint base = RunBarrierPhase(barrier_nodes, tree_fanout, 0);
  BarrierPhasePoint tree = RunBarrierPhase(barrier_nodes, tree_fanout, barrier_rounds);
  BarrierPhasePoint star = RunBarrierPhase(barrier_nodes, barrier_nodes, barrier_rounds);
  Table bt({"barrier @" + std::to_string(barrier_nodes) + " nodes", "rounds", "builds",
            "forwards", "wait mean us", "wait p50 us", "wait p99 us", "verified"});
  for (const BarrierPhasePoint* p : {&tree, &star}) {
    bt.AddRow({p == &tree ? "tree (k=" + std::to_string(tree_fanout) + ")" : "star",
               Table::Num(static_cast<uint64_t>(p->rounds)), Table::Num(p->release_builds),
               Table::Num(p->enter_forwards), Table::Fixed(p->wait_mean_ns / 1e3, 1),
               Table::Fixed(p->wait_p50_ns / 1e3, 1), Table::Fixed(p->wait_p99_ns / 1e3, 1),
               p->verified ? "yes" : "NO"});
  }
  std::printf("%s\n", bt.Render().c_str());

  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what.c_str());
    ++failures;
  };
  for (const BarrierPhasePoint* p : {&tree, &star}) {
    const char* shape = p == &tree ? "tree" : "star";
    if (!p->verified) {
      fail(std::string("barrier phase (") + shape + "): golden verification failed");
    }
    // Merged exactly once: net of the startup barrier's fixed cost, one release build per
    // round, everyone crossing every round.
    const uint64_t builds = p->release_builds - base.release_builds;
    const uint64_t crossings = p->barrier_crossings - base.barrier_crossings;
    if (builds != static_cast<uint64_t>(p->rounds)) {
      fail(std::string("barrier phase (") + shape + "): " + std::to_string(builds) +
           " release builds for " + std::to_string(p->rounds) +
           " rounds (want exactly one merge per round)");
    }
    if (crossings != static_cast<uint64_t>(p->rounds) * static_cast<uint64_t>(barrier_nodes)) {
      fail(std::string("barrier phase (") + shape + "): " + std::to_string(crossings) +
           " crossings, want " +
           std::to_string(static_cast<uint64_t>(p->rounds) * barrier_nodes));
    }
  }
  if (star.wait_mean_ns > 0 && tree.wait_mean_ns > max_mean_ratio * star.wait_mean_ns) {
    fail("barrier phase: tree wait mean " + std::to_string(tree.wait_mean_ns) + " ns > " +
         std::to_string(max_mean_ratio) + " x star baseline " +
         std::to_string(star.wait_mean_ns) + " ns");
  }
  if (star.wait_p99_ns > 0 &&
      static_cast<double>(tree.wait_p99_ns) >
          max_p99_ratio * static_cast<double>(star.wait_p99_ns)) {
    fail("barrier phase: tree wait p99 " + std::to_string(tree.wait_p99_ns) + " ns > " +
         std::to_string(max_p99_ratio) + " x star baseline " +
         std::to_string(star.wait_p99_ns) + " ns");
  }
  for (const CurvePoint& p : curve) {
    if (!p.all_verified) {
      fail(std::to_string(p.nodes) + " nodes: app verification failed");
    }
    if (p.payload_bytes_copied != 0) {
      fail(std::to_string(p.nodes) + " nodes: send path copied " +
           std::to_string(p.payload_bytes_copied) + " payload bytes (want 0 under RT)");
    }
    if (p.recv_bytes_copied != 0) {
      fail(std::to_string(p.nodes) + " nodes: inproc transport reported " +
           std::to_string(p.recv_bytes_copied) + " receive-copy bytes (want 0)");
    }
  }
  if (curve.size() >= 2) {
    const CurvePoint& lo = curve.front();
    const CurvePoint& hi = curve.back();
    // The collapse gate: aggregate throughput at the largest count must retain at least
    // min-retention of the smallest count's per-node throughput. A coordination hot spot
    // (all homes on one node) fails this by orders of magnitude; mere per-node slowdown
    // from oversubscription does not.
    const double floor = min_retention * lo.per_node_ops_per_sec;
    if (hi.sync_ops_per_sec < floor) {
      fail("throughput collapse: " + std::to_string(hi.sync_ops_per_sec) + " ops/s at " +
           std::to_string(hi.nodes) + " nodes < " + std::to_string(floor) + " (" +
           std::to_string(min_retention) + " x per-node throughput at " +
           std::to_string(lo.nodes) + ")");
    }
  }
  if (tcp) {
    if (!tcp_probe.all_verified) fail("tcp probe: app verification failed");
    // Reassembly copies are fragments of frames that straddled a 64 KiB pooled buffer —
    // a boundary tax, not a per-byte cost. If they rival the wire volume, the zero-copy
    // receive path has regressed into a copy-everything path.
    if (tcp_probe.recv_bytes_copied * 4 > tcp_probe.wire_bytes) {
      fail("tcp probe: receive path copied " + std::to_string(tcp_probe.recv_bytes_copied) +
           " of " + std::to_string(tcp_probe.wire_bytes) +
           " wire bytes; straddle reassembly should be a small fraction");
    }
  }

  const std::string json = options.GetString("json", "");
  if (!json.empty()) {
    WriteJson(json, curve, tcp ? &tcp_probe : nullptr, barrier_nodes, &tree, &star,
              failures == 0);
  }
  if (check) {
    if (failures > 0) {
      std::fprintf(stderr, "scaleout --check: %d failure(s)\n", failures);
      std::exit(1);
    }
    std::printf("scaleout --check: all gates passed\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
