// Table 3: write trapping time per application, derived exactly as the paper does — the
// per-processor primitive invocation counts (Table 2) multiplied by the primitive costs
// (Table 1, the paper's R3000 values by default).
#include "bench/bench_util.h"
#include "src/core/cost_model.h"

namespace midway {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  PrintHeader("Table 3: write trapping time (ms, counts x Table 1 costs)", opts);

  CostModel model;  // paper Table 1 costs
  auto rt = RunSuite(DetectionMode::kRt, opts);
  auto vm = RunSuite(DetectionMode::kVmSoft, opts);

  std::vector<std::string> header = {"System", "Operation"};
  for (const std::string& app : AppNames()) header.push_back(app);
  Table t(header);

  std::vector<std::string> rt_row = {"RT-DSM", "write trapping time"};
  std::vector<std::string> vm_row = {"VM-DSM", "write trapping time"};
  std::vector<std::string> adv_row = {"", "RT-DSM trapping advantage"};
  int rt_wins = 0;
  for (const std::string& app : AppNames()) {
    const double rt_ms = model.RtTrappingMs(rt.at(app).per_proc);
    const double vm_ms = model.VmTrappingMs(vm.at(app).per_proc);
    rt_row.push_back(Table::Fixed(rt_ms));
    vm_row.push_back(Table::Fixed(vm_ms));
    adv_row.push_back(Table::Fixed(vm_ms - rt_ms));
    if (rt_ms <= vm_ms) ++rt_wins;
  }
  t.AddRow(std::move(rt_row));
  t.AddRow(std::move(vm_row));
  t.AddSeparator();
  t.AddRow(std::move(adv_row));
  std::printf("%s", t.Render().c_str());
  std::printf("Paper's finding: with Mach-cost faults (1200 us), RT-DSM traps cheaper for "
              "every application. Here RT wins %d/%zu.\n", rt_wins, AppNames().size());
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
