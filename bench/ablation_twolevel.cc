// Ablation (paper §3.5, "other memory models"): the mechanisms that keep collection cost
// proportional to the amount of *dirty* data rather than the amount of *shared* data under
// an untargetted consistency model, where every synchronization must consider everything:
//
//   * two-level dirtybits — one extra store per write sets a cover bit over N lines;
//   * update queue        — writes append line runs to a queue (~3x trapping cost in the
//                           paper); collection walks the queue;
//   * hybrid              — the dirtybit *pages* are write-protected; the first slot store
//                           per page faults and sets the cover bit, leaving the store fast
//                           path untouched.
//
// We emulate the untargetted case by binding the barrier to the whole (mostly clean) array
// and writing only a tiny hot window.
#include "bench/bench_util.h"

namespace midway {
namespace bench {
namespace {

struct Result {
  CounterSnapshot totals;
};

Result RunHotWindow(DetectionMode mode, uint16_t procs, int total, int hot,
                    uint32_t fanout) {
  SystemConfig config;
  config.mode = mode;
  config.num_procs = procs;
  config.first_level_fanout = fanout;
  System system(config);
  system.Run([&](Runtime& rt) {
    auto data = MakeSharedArray<int64_t>(rt, total, /*line_size=*/8);
    BarrierId barrier = rt.CreateBarrier();
    rt.BindBarrier(barrier, {data.WholeRange()});  // untargetted: scan everything
    // init-phase: untracked raw stores, legal only before BeginParallel
    for (int i = 0; i < total; ++i) data.raw_mutable()[i] = 0;
    rt.BeginParallel();
    // Each processor repeatedly writes a small private hot window at the front of its block.
    const int per = total / rt.nprocs();
    const int lo = rt.self() * per;
    for (int round = 0; round < 4; ++round) {
      for (int i = lo; i < lo + hot; ++i) {
        data[i] = data.Get(i) + 1;
      }
      rt.BarrierWait(barrier);
    }
  });
  return Result{system.Total()};
}

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  const int total = static_cast<int>(options.GetInt("elements", opts.full ? 1 << 20 : 1 << 16));
  const int hot = static_cast<int>(options.GetInt("hot", 64));
  PrintHeader("Ablation: two-level dirtybits under an untargetted scan", opts);
  std::printf("elements=%d hot-window=%d rounds=4 (dirty fraction ~%.4f)\n", total, hot,
              static_cast<double>(hot * opts.procs) / total);

  Result flat = RunHotWindow(DetectionMode::kRt, opts.procs, total, hot, 64);
  Table t({"Variant", "dirtybits set", "extra trap work", "dirtybit reads (scan)",
           "blocks skipped", "scan reads saved"});
  const uint64_t flat_reads = flat.totals.clean_dirtybits_read + flat.totals.dirty_dirtybits_read;
  auto saved_pct = [&](uint64_t reads) {
    return Table::Fixed(
               100.0 * (1.0 - static_cast<double>(reads) / static_cast<double>(flat_reads)),
               1) +
           "%";
  };
  t.AddRow({"RT flat", Table::Num(flat.totals.dirtybits_set), Table::Num(uint64_t{0}),
            Table::Num(flat_reads), Table::Num(uint64_t{0}), "0.0%"});
  for (uint32_t fanout : {16u, 64u, 256u, 1024u}) {
    Result two = RunHotWindow(DetectionMode::kRtTwoLevel, opts.procs, total, hot, fanout);
    const uint64_t reads = two.totals.clean_dirtybits_read + two.totals.dirty_dirtybits_read;
    t.AddRow({"RT 2-level fanout " + std::to_string(fanout),
              Table::Num(two.totals.dirtybits_set), Table::Num(two.totals.first_level_set),
              Table::Num(reads), Table::Num(two.totals.first_level_skips), saved_pct(reads)});
  }
  t.AddSeparator();
  {
    Result queue = RunHotWindow(DetectionMode::kRtQueue, opts.procs, total, hot, 64);
    const uint64_t reads =
        queue.totals.clean_dirtybits_read + queue.totals.dirty_dirtybits_read;
    t.AddRow({"RT update queue", Table::Num(queue.totals.dirtybits_set),
              Table::Num(queue.totals.queue_appends + queue.totals.queue_merges),
              Table::Num(reads), Table::Num(uint64_t{0}), saved_pct(reads)});
    Result hybrid = RunHotWindow(DetectionMode::kRtHybrid, opts.procs, total, hot, 64);
    const uint64_t hreads =
        hybrid.totals.clean_dirtybits_read + hybrid.totals.dirty_dirtybits_read;
    t.AddRow({"RT hybrid (VM 1st level)", Table::Num(hybrid.totals.dirtybits_set),
              Table::Num(hybrid.totals.first_level_set) + " faults",
              Table::Num(hreads), Table::Num(hybrid.totals.first_level_skips),
              saved_pct(hreads)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "Expected shapes (paper 3.5): the two-level variant adds one extra store per write\n"
      "(~10%% trapping overhead in the paper) and collapses collection reads to roughly\n"
      "(dirty lines + total/fanout); the update queue adds ~2 extra operations per write\n"
      "(the paper says trapping roughly triples) and makes collection proportional to the\n"
      "number of distinct dirty runs; the hybrid leaves the store path untouched, paying one\n"
      "page fault per 512-line cover page instead. All three keep detection cost\n"
      "proportional to the amount of dirty data, not the amount of shared data.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
