// End-to-end synchronization-time data path benchmark: diff throughput (SIMD dispatch vs
// the scalar reference), summary-bitmap collection, and the full collect -> serialize ->
// deliver -> apply pipeline over five app-like binding shapes.
//
// `--check` turns the run into a perf-smoke gate: it exits nonzero when the pipeline
// produces wrong bytes, when the send fast path copies payload bytes (it must be
// zero-copy), when wire overhead per update regresses past --max-overhead, or when the
// vectorized diff fails to clear --min-speedup on sparse/dense pages (only enforced where
// AVX2 is actually available). `--json=<path>` writes BENCH_sync_path.json
// (schema midway-sync-path/v1, documented in EXPERIMENTS.md).
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/protocol.h"
#include "src/core/strategy.h"
#include "src/mem/diff.h"
#include "src/mem/dirtybit_table.h"
#include "src/mem/payload_arena.h"

namespace midway {
namespace bench {
namespace {

using Page = std::vector<std::byte>;

// --- Diff throughput ----------------------------------------------------------------------

struct PagePair {
  Page current;
  Page twin;
};

// Dirty-byte layouts chosen to stress the three mask paths: all-clean chunks (fast skip),
// mixed chunks (transition scan), and all-dirty chunks (run continuation).
PagePair MakePage(const std::string& shape, size_t bytes, SplitMix64* rng) {
  PagePair p;
  p.twin.resize(bytes);
  for (auto& b : p.twin) b = static_cast<std::byte>(rng->Next());
  p.current = p.twin;
  auto touch = [&](size_t at, size_t len) {
    for (size_t i = at; i < std::min(bytes, at + len); ++i) {
      p.current[i] = static_cast<std::byte>(static_cast<uint8_t>(p.current[i]) + 1);
    }
  };
  if (shape == "sparse") {
    // A handful of short scattered runs; most chunks are clean.
    for (int i = 0; i < 8; ++i) {
      touch(rng->NextBounded(bytes), 16 + rng->NextBounded(48));
    }
  } else if (shape == "dense") {
    // Most of the page dirty (7 of every 8 chunks), clean holes every 1 KB — the shape a
    // page takes after a heavy write phase, where most chunks hit the all-dirty fast path.
    for (size_t at = 0; at < bytes; at += 1024) touch(at, 896);
  } else if (shape == "alternating") {
    // Every other 64-byte block dirty: every chunk is mixed — the adversarial worst case
    // for the mask-transition scan (reported but not gated; see --min-speedup).
    for (size_t at = 0; at < bytes; at += 128) touch(at, 64);
  } else if (shape == "full") {
    touch(0, bytes);
  }  // "clean": identical pages
  return p;
}

struct DiffRow {
  std::string impl;
  std::string shape;
  size_t page_bytes = 0;
  double gbps = 0;
  double speedup = 0;  // vs scalar on the same input
};

double MeasureDiffSeconds(DiffImpl impl, const PagePair& p, int iters) {
  // Reuse one run vector across iterations, as VmStrategy::Collect does across pages, so
  // the measurement is diffing cost rather than per-call allocator traffic.
  std::vector<DiffRun> runs;
  Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    ComputeDiffWithInto(impl, p.current, p.twin, &runs);
    // Keep the result alive so the compiler cannot elide the work.
    if (!runs.empty() && runs[0].length == 0xFFFFFFFF) std::abort();
  }
  return sw.ElapsedSeconds();
}

std::vector<DiffRow> RunDiffSection(bool full) {
  SplitMix64 rng(0x5EED0001);
  const std::vector<size_t> sizes = {4096, 65536};
  const std::vector<std::string> shapes = {"clean", "sparse", "dense", "alternating", "full"};
  std::vector<DiffImpl> impls = {DiffImpl::kScalar};
  for (DiffImpl impl : {DiffImpl::kSwar, DiffImpl::kSse2, DiffImpl::kAvx2}) {
    if (DiffImplAvailable(impl)) impls.push_back(impl);
  }

  std::vector<DiffRow> rows;
  Table t({"Diff", "page", "impl", "GB/s", "speedup vs scalar"});
  for (size_t bytes : sizes) {
    for (const std::string& shape : shapes) {
      PagePair p = MakePage(shape, bytes, &rng);
      // Sanity: every impl must agree with the scalar reference on this exact input.
      const auto reference = ComputeDiffScalar(p.current, p.twin);
      double scalar_gbps = 0;
      for (DiffImpl impl : impls) {
        MIDWAY_CHECK(ComputeDiffWith(impl, p.current, p.twin) == reference)
            << " " << DiffImplName(impl) << " diverges from scalar on " << shape;
        // Calibrate: aim for ~20ms (full) / ~5ms (fast) of measurement per cell.
        const double budget = full ? 0.02 : 0.005;
        int iters = 16;
        double secs = MeasureDiffSeconds(impl, p, iters);
        while (secs < budget) {
          iters *= 4;
          secs = MeasureDiffSeconds(impl, p, iters);
        }
        DiffRow row;
        row.impl = DiffImplName(impl);
        row.shape = shape;
        row.page_bytes = bytes;
        row.gbps = static_cast<double>(bytes) * iters / secs / 1e9;
        if (impl == DiffImpl::kScalar) scalar_gbps = row.gbps;
        row.speedup = scalar_gbps > 0 ? row.gbps / scalar_gbps : 0;
        rows.push_back(row);
        t.AddRow({shape, std::to_string(bytes), row.impl, Table::Fixed(row.gbps, 2),
                  Table::Fixed(row.speedup, 2) + "x"});
      }
    }
  }
  std::printf("%s", t.Render().c_str());
  std::printf("best impl on this CPU: %s\n\n", DiffImplName(BestDiffImpl()));
  return rows;
}

// --- Summary-bitmap collection ------------------------------------------------------------

struct CollectRow {
  std::string pattern;
  size_t lines = 0;
  size_t dirty = 0;
  double ns_per_line = 0;
  uint64_t summary_skips = 0;  // per scan
};

std::vector<CollectRow> RunCollectSection(bool full) {
  const size_t lines = full ? (1 << 20) : (1 << 17);
  SplitMix64 rng(0x5EED0002);
  struct Pattern {
    std::string name;
    size_t dirty;
    bool strided;  // one dirty line per summary word (worst case) vs random placement
  };
  const std::vector<Pattern> patterns = {
      {"all-clean rescan", 0, false},
      {"sparse (1/4096 dirty)", lines / 4096, false},
      {"strided (1 per summary word)", lines / 64, true},
      {"dense (1/4 dirty)", lines / 4, false},
  };
  std::vector<CollectRow> rows;
  Table t({"Collect", "lines", "dirty", "ns/line", "summary words skipped"});
  for (const Pattern& pat : patterns) {
    DirtybitTable table(lines, /*line_shift=*/6);
    for (size_t i = 0; i < pat.dirty; ++i) {
      table.MarkDirty(pat.strided ? i * 64 : rng.NextBounded(lines));
    }
    std::vector<DirtybitTable::DirtyLine> out;
    // First scan stamps sentinels; timed scans then measure the steady rescan cost the
    // communication thread pays at every synchronization point.
    DirtybitTable::ScanStats stats = table.CollectRange(0, lines - 1, 0, 1, &out);
    const int iters = 32;
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) {
      out.clear();
      stats = table.CollectRange(0, lines - 1, /*since=*/1, /*stamp_ts=*/2, &out);
    }
    const double secs = sw.ElapsedSeconds();
    CollectRow row;
    row.pattern = pat.name;
    row.lines = lines;
    row.dirty = pat.dirty;
    row.ns_per_line = secs * 1e9 / (static_cast<double>(lines) * iters);
    row.summary_skips = stats.summary_skips;
    rows.push_back(row);
    t.AddRow({pat.name, std::to_string(lines), std::to_string(pat.dirty),
              Table::Fixed(row.ns_per_line, 3), Table::Num(row.summary_skips)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf("a skipped summary word avoids 64 slot loads; the all-clean rescan is the\n"
              "common case at barriers once stamped lines age out\n\n");
  return rows;
}

// --- End-to-end pipeline ------------------------------------------------------------------

// One DSM processor's worth of strategy state, standing in for a node.
struct Node {
  SystemConfig config;
  RegionTable regions;
  Counters counters;
  std::unique_ptr<DetectionStrategy> strategy;
  Region* region = nullptr;

  explicit Node(size_t bytes) {
    config.mode = DetectionMode::kRt;
    strategy = MakeStrategy(config, &regions, &counters);
    region = regions.Create(bytes, /*line_size=*/64, /*shared=*/true);
    strategy->AttachRegion(region);
    strategy->OnBeginParallel();
  }

  void Write(uint32_t offset, uint32_t len, uint8_t seed) {
    strategy->NoteWrite(region->header(), offset, len);
    std::byte* dst = region->data() + offset;
    for (uint32_t i = 0; i < len; ++i) dst[i] = static_cast<std::byte>(seed + i);
  }
};

// Write patterns shaped like the five applications' bound data (paper §4).
void WriteShape(Node* node, const std::string& app, uint32_t round, SplitMix64* rng) {
  const auto size = static_cast<uint32_t>(node->region->size());
  const auto seed = static_cast<uint8_t>(round * 31);
  if (app == "water") {
    // Scattered per-molecule records.
    for (int i = 0; i < 512; ++i) {
      node->Write(static_cast<uint32_t>(rng->NextBounded(size - 24)), 24, seed);
    }
  } else if (app == "quicksort") {
    // One contiguous half of the array.
    node->Write(round % 2 == 0 ? 0 : size / 2, size / 2, seed);
  } else if (app == "matmul") {
    // A block of each row: strided 64-byte segments.
    for (uint32_t at = 0; at + 64 <= size; at += 512) node->Write(at, 64, seed);
  } else if (app == "sor") {
    // Alternate 256-byte rows (red/black sweep).
    for (uint32_t row = round % 2; row * 256 + 256 <= size; row += 2) {
      node->Write(row * 256, 256, seed);
    }
  } else if (app == "cholesky") {
    // Shrinking column segments.
    for (uint32_t col = round % 8; col * 2048 + 128 <= size; col += 8) {
      node->Write(col * 2048, 128, seed);
    }
  }
}

struct E2eRow {
  std::string app;
  uint64_t updates = 0;
  uint64_t payload_bytes = 0;
  uint64_t wire_bytes = 0;
  double overhead_per_update = 0;
  uint64_t send_bytes_copied = 0;  // payload bytes memcpy'd on the send path (want 0)
  double mbps = 0;
  bool correct = false;
};

std::vector<E2eRow> RunE2eSection(bool full) {
  const size_t region_bytes = full ? (1 << 20) : (1 << 18);
  const int rounds = full ? 32 : 8;
  std::vector<E2eRow> rows;
  Table t({"E2E (RT)", "updates", "payload KB", "wire KB", "ovh B/upd", "copied B", "MB/s",
           "verified"});
  for (const std::string& app : AppNames()) {
    SplitMix64 rng(0x5EED0003);
    Node sender(region_bytes);
    Node receiver(region_bytes);
    Binding binding;
    binding.ranges = {
        GlobalRange{{sender.region->id(), 0}, static_cast<uint32_t>(region_bytes)}};
    E2eRow row;
    row.app = app;
    Stopwatch sw;
    for (int round = 0; round < rounds; ++round) {
      WriteShape(&sender, app, static_cast<uint32_t>(round), &rng);
      const auto ts = static_cast<uint64_t>(round) + 1;
      UpdateSet set;
      sender.strategy->Collect(binding, /*since=*/ts - 1, /*stamp_ts=*/ts, &set);

      // Send side: collect + serialize must not copy a single payload byte — entries view
      // region memory and the writer records them as external segments.
      const uint64_t copied_before = PayloadBytesCopied();
      WireWriter w;
      w.EnableZeroCopy();
      EncodeUpdateSet(&w, set);
      std::vector<std::byte> frame = w.Take();  // the transport's single gather (writev)
      row.send_bytes_copied += PayloadBytesCopied() - copied_before;

      row.updates += set.size();
      row.payload_bytes += UpdateBytes(set);
      row.wire_bytes += frame.size();

      // Receive side: decode (copies once into arena chunks) and apply.
      WireReader r(frame);
      UpdateSet decoded;
      MIDWAY_CHECK(DecodeUpdateSet(&r, &decoded));
      for (const UpdateEntry& e : decoded) {
        receiver.strategy->ApplyEntry(e);
      }
    }
    const double secs = sw.ElapsedSeconds();
    row.correct = std::memcmp(sender.region->data(), receiver.region->data(),
                              region_bytes) == 0;
    row.overhead_per_update =
        row.updates > 0
            ? static_cast<double>(row.wire_bytes - row.payload_bytes) / row.updates
            : 0;
    row.mbps = row.wire_bytes / secs / 1e6;
    rows.push_back(row);
    t.AddRow({app, Table::Num(row.updates), Table::Num(row.payload_bytes / 1024),
              Table::Num(row.wire_bytes / 1024), Table::Fixed(row.overhead_per_update, 1),
              Table::Num(row.send_bytes_copied), Table::Fixed(row.mbps, 1),
              row.correct ? "yes" : "NO"});
  }
  std::printf("%s", t.Render().c_str());
  std::printf("copied B counts payload bytes memcpy'd between collect and the transport\n"
              "gather; 0 means every payload byte traveled region memory -> kernel\n\n");
  return rows;
}

// --- JSON + check gate --------------------------------------------------------------------

void WriteJson(const std::string& path, const std::vector<DiffRow>& diff,
               const std::vector<CollectRow>& collect, const std::vector<E2eRow>& e2e,
               bool checks_passed) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"schema\": \"midway-sync-path/v1\",\n";
  out << "  \"best_diff_impl\": \"" << DiffImplName(BestDiffImpl()) << "\",\n";
  out << "  \"diff\": [\n";
  for (size_t i = 0; i < diff.size(); ++i) {
    const DiffRow& r = diff[i];
    out << "    {\"impl\": \"" << r.impl << "\", \"shape\": \"" << r.shape
        << "\", \"page_bytes\": " << r.page_bytes << ", \"gbps\": " << r.gbps
        << ", \"speedup_vs_scalar\": " << r.speedup << "}"
        << (i + 1 < diff.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"collect\": [\n";
  for (size_t i = 0; i < collect.size(); ++i) {
    const CollectRow& r = collect[i];
    out << "    {\"pattern\": \"" << r.pattern << "\", \"lines\": " << r.lines
        << ", \"dirty\": " << r.dirty << ", \"ns_per_line\": " << r.ns_per_line
        << ", \"summary_word_skips\": " << r.summary_skips << "}"
        << (i + 1 < collect.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"e2e\": [\n";
  for (size_t i = 0; i < e2e.size(); ++i) {
    const E2eRow& r = e2e[i];
    out << "    {\"app\": \"" << r.app << "\", \"updates\": " << r.updates
        << ", \"payload_bytes\": " << r.payload_bytes << ", \"wire_bytes\": " << r.wire_bytes
        << ", \"overhead_bytes_per_update\": " << r.overhead_per_update
        << ", \"send_payload_bytes_copied\": " << r.send_bytes_copied
        << ", \"throughput_mbps\": " << r.mbps
        << ", \"verified\": " << (r.correct ? "true" : "false") << "}"
        << (i + 1 < e2e.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"checks_passed\": " << (checks_passed ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  const bool check = options.GetBool("check");
  const double max_overhead = options.GetDouble("max-overhead", 24.0);
  const double min_speedup = options.GetDouble("min-speedup", 4.0);
  PrintHeader("Synchronization-time data path", opts);

  std::vector<DiffRow> diff = RunDiffSection(opts.full);
  std::vector<CollectRow> collect = RunCollectSection(opts.full);
  std::vector<E2eRow> e2e = RunE2eSection(opts.full);

  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what.c_str());
    ++failures;
  };
  for (const E2eRow& r : e2e) {
    if (!r.correct) fail(r.app + ": receiver bytes diverge from sender");
    if (r.send_bytes_copied != 0) {
      fail(r.app + ": send path copied " + std::to_string(r.send_bytes_copied) +
           " payload bytes (want 0)");
    }
    if (r.overhead_per_update > max_overhead) {
      fail(r.app + ": wire overhead " + std::to_string(r.overhead_per_update) +
           " bytes/update exceeds " + std::to_string(max_overhead));
    }
  }
  // The >= 4x diff criterion is only meaningful where a vector unit exists; SWAR alone on
  // sparse pages clears ~4x but is not guaranteed to on every compiler.
  if (DiffImplAvailable(DiffImpl::kAvx2)) {
    for (const DiffRow& r : diff) {
      if (r.impl == DiffImplName(DiffImpl::kAvx2) &&
          (r.shape == "sparse" || r.shape == "dense") && r.speedup < min_speedup) {
        fail("diff " + r.shape + "/" + std::to_string(r.page_bytes) + ": " + r.impl +
             " speedup " + std::to_string(r.speedup) + "x below " +
             std::to_string(min_speedup) + "x");
      }
    }
  }

  const std::string json = options.GetString("json", "");
  if (!json.empty()) WriteJson(json, diff, collect, e2e, failures == 0);
  if (check) {
    if (failures > 0) {
      std::fprintf(stderr, "sync_path --check: %d failure(s)\n", failures);
      std::exit(1);
    }
    std::printf("sync_path --check: all gates passed\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
