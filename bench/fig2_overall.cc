// Figure 2: overall execution time and total data transferred for every application under
// RT-DSM and VM-DSM, plus the standalone (uniprocessor, no write detection) baseline.
//
// Note on absolute times: the paper ran on eight physical DECstations; here the DSM
// "processors" are threads timeslicing on the host's cores, so absolute parallel times are
// not speedup-meaningful. The reproducible shapes are (a) the relative RT-vs-VM ordering per
// application and (b) the data-transferred comparison, which is hardware independent.
#include "bench/bench_util.h"

namespace midway {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  PrintHeader("Figure 2: execution time and data transferred", opts);

  auto rt = RunSuite(DetectionMode::kRt, opts);
  auto vm = RunSuite(DetectionMode::kVmSoft, opts);

  SuiteOptions solo = opts;
  solo.procs = 1;
  auto standalone = RunSuite(DetectionMode::kStandalone, solo);

  Table t({"Application", "standalone 1p (s)", "RT-DSM (s)", "VM-DSM (s)", "RT data (MB)",
           "VM data (MB)", "VM/RT data", "verified"});
  for (const std::string& app : AppNames()) {
    const AppReport& r = rt.at(app);
    const AppReport& v = vm.at(app);
    const double rt_mb = static_cast<double>(r.total.data_bytes_sent) / (1024.0 * 1024.0);
    const double vm_mb = static_cast<double>(v.total.data_bytes_sent) / (1024.0 * 1024.0);
    t.AddRow({app, Table::Fixed(standalone.at(app).elapsed_sec, 3),
              Table::Fixed(r.elapsed_sec, 3), Table::Fixed(v.elapsed_sec, 3),
              Table::Fixed(rt_mb, 3), Table::Fixed(vm_mb, 3),
              Table::Fixed(rt_mb > 0 ? vm_mb / rt_mb : 0.0, 2),
              (r.verified && v.verified && standalone.at(app).verified) ? "yes" : "NO"});
  }
  std::printf("%s", t.Render().c_str());
  std::printf("Paper's finding (data): VM-DSM transfers at least as much application data as\n"
              "RT-DSM for every program (about 1.4x for water and cholesky at paper scale);\n"
              "only quicksort's execution time favors VM-DSM.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
