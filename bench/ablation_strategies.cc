// Ablation (paper §3.5): the alternative consistency mechanisms that need neither dirtybits
// nor page faults — "blast" (ship all bound data on every transfer) and "twin everything"
// (no detection; diff all bound data against always-present twins) — compared against RT-DSM
// and both VM-DSM backends on the two lock-based applications.
#include "bench/bench_util.h"

namespace midway {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  PrintHeader("Ablation: detection strategy alternatives (paper 3.5)", opts);

  const std::vector<DetectionMode> modes = {
      DetectionMode::kRt,    DetectionMode::kVmSoft,  DetectionMode::kVmSigsegv,
      DetectionMode::kBlast, DetectionMode::kTwinAll,
  };

  for (const char* app : {"quicksort", "cholesky"}) {
    Table t({"Strategy", "time (s)", "data sent (MB)", "wire (MB)", "faults", "pages diffed",
             "dirtybits set", "full sends", "verified"});
    for (DetectionMode mode : modes) {
      SystemConfig config;
      config.mode = mode;
      config.num_procs = opts.procs;
      config.transport = opts.transport;
      AppReport r = RunAppByName(app, config, opts.full);
      t.AddRow({DetectionModeName(mode), Table::Fixed(r.elapsed_sec, 3),
                Table::Fixed(static_cast<double>(r.total.data_bytes_sent) / (1 << 20), 3),
                Table::Fixed(static_cast<double>(r.wire_bytes) / (1 << 20), 3),
                Table::Num(r.total.write_faults), Table::Num(r.total.pages_diffed),
                Table::Num(r.total.dirtybits_set), Table::Num(r.total.full_data_sends),
                r.verified ? "yes" : "NO"});
    }
    std::printf("\n--- %s ---\n%s", app, t.Render().c_str());
  }
  std::printf(
      "Expected shapes (paper 3.5): Blast has zero detection work but ships the most data\n"
      "(it transfers unnecessarily when locks guard sparsely-written data); TwinAll avoids\n"
      "detection but pays diffs over ALL bound data and doubles storage; RT-DSM ships the\n"
      "least for fine-grained cholesky; quicksort's rebinding makes the VM modes ship full\n"
      "data anyway, converging toward Blast.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
