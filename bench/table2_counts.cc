// Table 2: per-processor invocation counts of the primitive operations for every
// application under RT-DSM and VM-DSM.
#include "bench/bench_util.h"

namespace midway {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  PrintHeader("Table 2: per-processor invocation counts of the primitive operations", opts);

  auto rt = RunSuite(DetectionMode::kRt, opts);
  auto vm = RunSuite(DetectionMode::kVmSoft, opts);

  std::vector<std::string> header = {"System", "Operation"};
  for (const std::string& app : AppNames()) header.push_back(app);
  Table t(header);

  auto row = [&](const std::map<std::string, AppReport>& suite, const char* system,
                 const char* op, auto field, bool kb = false) {
    std::vector<std::string> cells = {system, op};
    for (const std::string& app : AppNames()) {
      uint64_t v = field(suite.at(app).per_proc);
      cells.push_back(Table::Num(kb ? v / 1024 : v));
    }
    t.AddRow(std::move(cells));
  };

  using S = CounterSnapshot;
  row(rt, "RT-DSM", "dirtybits set", [](const S& s) { return s.dirtybits_set; });
  row(rt, "", "dirtybits misclassified",
      [](const S& s) { return s.dirtybits_misclassified; });
  row(rt, "", "clean dirtybits read", [](const S& s) { return s.clean_dirtybits_read; });
  row(rt, "", "dirty dirtybits read", [](const S& s) { return s.dirty_dirtybits_read; });
  row(rt, "", "dirtybits updated", [](const S& s) { return s.dirtybits_updated; });
  row(rt, "", "data transferred (KB)", [](const S& s) { return s.data_bytes_sent; }, true);
  t.AddSeparator();
  row(vm, "VM-DSM", "write faults", [](const S& s) { return s.write_faults; });
  row(vm, "", "pages diffed", [](const S& s) { return s.pages_diffed; });
  row(vm, "", "pages write protected", [](const S& s) { return s.pages_write_protected; });
  row(vm, "", "data updated in twins (KB)", [](const S& s) { return s.twin_bytes_updated; },
      true);
  row(vm, "", "full-data sends", [](const S& s) { return s.full_data_sends; });
  row(vm, "", "data transferred (KB)", [](const S& s) { return s.data_bytes_sent; }, true);

  std::printf("%s", t.Render().c_str());

  // Percent dirty data (the paper's last RT row): transferred bytes / bound-data scans.
  std::printf("Shapes to check against the paper's Table 2: cholesky has the largest counts\n"
              "(fine-grain); matmul/quicksort fault few pages relative to their stores;\n"
              "VM transfers at least as much data as RT everywhere, far more for quicksort.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
