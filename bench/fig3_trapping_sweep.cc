// Figure 3: the effect of varying the page fault cost on write trapping.
//
// Each application is a horizontal line from the fast-exception fault cost (122 us, Thekkath
// & Levy's handler plus the 4 KB twin copy) to Mach's external pager (1200 us); the paper's
// break-even diagonal becomes, per application, the fault cost at which VM-DSM's trapping
// time equals RT-DSM's. Applications whose break-even lies inside [122, 1200] "span the
// diagonal" in the paper's plot.
#include "bench/bench_util.h"
#include "src/core/cost_model.h"

namespace midway {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  PrintHeader("Figure 3: write trapping cost vs page fault cost", opts);

  CostModel model;
  auto rt = RunSuite(DetectionMode::kRt, opts);
  auto vm = RunSuite(DetectionMode::kVmSoft, opts);

  Table t({"Application", "RT trap (ms)", "VM trap @122us (ms)", "VM trap @1200us (ms)",
           "break-even fault (us)", "spans diagonal?"});
  for (const std::string& app : AppNames()) {
    const auto& rt_counts = rt.at(app).per_proc;
    const auto& vm_counts = vm.at(app).per_proc;
    const double rt_ms = model.RtTrappingMs(rt_counts);
    const double vm_fast = model.VmTrappingMs(vm_counts, model.page_fault_fast_us);
    const double vm_mach = model.VmTrappingMs(vm_counts, model.page_fault_us);
    const double be = model.BreakEvenTrappingFaultUs(rt_counts, vm_counts);
    const bool spans = be >= model.page_fault_fast_us && be <= model.page_fault_us;
    t.AddRow({app, Table::Fixed(rt_ms), Table::Fixed(vm_fast), Table::Fixed(vm_mach),
              Table::Fixed(be, 0), spans ? "yes" : (vm_mach < rt_ms ? "no (VM wins)"
                                                                    : "no (RT wins)")});
  }
  std::printf("%s", t.Render().c_str());

  // The sweep itself (series data for re-plotting the figure).
  std::printf("\nSeries: VM trapping time (ms) at fault costs 122..1200 us\n");
  Table s({"fault us", "water", "quicksort", "matmul", "sor", "cholesky", "RT(const): water",
           "qsort", "matmul", "sor", "cholesky"});
  for (double fault = 122; fault <= 1200 + 1; fault += (1200.0 - 122.0) / 10) {
    std::vector<std::string> cells = {Table::Fixed(fault, 0)};
    for (const std::string& app : AppNames()) {
      cells.push_back(Table::Fixed(model.VmTrappingMs(vm.at(app).per_proc, fault)));
    }
    for (const std::string& app : AppNames()) {
      cells.push_back(Table::Fixed(model.RtTrappingMs(rt.at(app).per_proc)));
    }
    s.AddRow(std::move(cells));
  }
  std::printf("%s", s.Render().c_str());

  // Optional plot-ready CSV (--csv=<dir>): fault_us, VM:<app>..., RT:<app>... .
  {
    std::vector<std::string> csv_header = {"fault_us"};
    for (const std::string& app : AppNames()) csv_header.push_back("vm_" + app);
    for (const std::string& app : AppNames()) csv_header.push_back("rt_" + app);
    std::vector<std::vector<double>> csv_rows;
    for (double fault = 122; fault <= 1200 + 1; fault += (1200.0 - 122.0) / 50) {
      std::vector<double> row = {fault};
      for (const std::string& app : AppNames()) {
        row.push_back(model.VmTrappingMs(vm.at(app).per_proc, fault));
      }
      for (const std::string& app : AppNames()) {
        row.push_back(model.RtTrappingMs(rt.at(app).per_proc));
      }
      csv_rows.push_back(std::move(row));
    }
    MaybeWriteCsv(options, "fig3_trapping", csv_header, csv_rows);
  }
  std::printf("Paper's finding: most applications span the break-even point — VM trapping\n"
              "cost depends strongly on the platform's exception cost; medium/fine-grain\n"
              "applications favor RT-DSM.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
