// Table 5: memory references incurred by write detection, using the paper's own formulas:
//   RT trapping   = dirtybits set
//   RT collection = clean reads + 2 x dirty reads (timestamp stored back) + updates applied
//   VM trapping   = 2 x words-per-page x pages twinned (read original, write twin)
//   VM collection = 2 x words-per-page x pages diffed + words applied to twins
#include "bench/bench_util.h"
#include "src/core/cost_model.h"

namespace midway {
namespace bench {
namespace {

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  PrintHeader("Table 5: memory references incurred by write detection (x1000, per proc)",
              opts);

  CostModel model;
  auto rt = RunSuite(DetectionMode::kRt, opts);
  auto vm = RunSuite(DetectionMode::kVmSoft, opts);

  std::vector<std::string> header = {"System", "Operation"};
  for (const std::string& app : AppNames()) header.push_back(app);
  Table t(header);

  auto add = [&](const char* system, const char* op, auto value) {
    std::vector<std::string> cells = {system, op};
    for (const std::string& app : AppNames()) {
      cells.push_back(Table::Num(static_cast<int64_t>(value(app) / 1000.0)));
    }
    t.AddRow(std::move(cells));
  };

  add("RT-DSM", "write trapping", [&](const std::string& a) {
    return static_cast<double>(model.RtTrappingRefs(rt.at(a).per_proc));
  });
  add("", "write collection", [&](const std::string& a) {
    return static_cast<double>(model.RtCollectionRefs(rt.at(a).per_proc));
  });
  add("", "Total", [&](const std::string& a) {
    return static_cast<double>(model.RtTrappingRefs(rt.at(a).per_proc) +
                               model.RtCollectionRefs(rt.at(a).per_proc));
  });
  t.AddSeparator();
  add("VM-DSM", "write trapping", [&](const std::string& a) {
    return static_cast<double>(model.VmTrappingRefs(vm.at(a).per_proc));
  });
  add("", "write collection", [&](const std::string& a) {
    return static_cast<double>(model.VmCollectionRefs(vm.at(a).per_proc));
  });
  add("", "Total", [&](const std::string& a) {
    return static_cast<double>(model.VmTrappingRefs(vm.at(a).per_proc) +
                               model.VmCollectionRefs(vm.at(a).per_proc));
  });
  t.AddSeparator();
  add("", "RT memory reference advantage", [&](const std::string& a) {
    const double vm_total =
        model.VmTrappingRefs(vm.at(a).per_proc) + model.VmCollectionRefs(vm.at(a).per_proc);
    const double rt_total =
        model.RtTrappingRefs(rt.at(a).per_proc) + model.RtCollectionRefs(rt.at(a).per_proc);
    return vm_total - rt_total;
  });
  std::printf("%s", t.Render().c_str());
  std::printf("Paper's finding: for the medium/fine-grain applications RT-DSM incurs\n"
              "substantially fewer memory references, mainly by avoiding twin and diff; the\n"
              "coarse-grain applications (quicksort, matmul) may tip slightly the other way.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
