// Ablation: coherency granularity and false sharing (paper §1.1/§2).
//
// A synthetic sparse writer: P processors each own a contiguous block of a shared array and
// write every `stride`-th element, then synchronize through a barrier bound to the whole
// array. Under RT-DSM the unit of coherency is the software cache line: growing it amplifies
// the data transferred (a whole line ships per touched element) exactly the way the 4 KB
// page amplifies VM-DSM — which is why "the size of a virtual memory page is too big to
// serve as a unit of coherency". Under VM-DSM the transferred data stays word-exact (diffs)
// but trapping/collection work is page-granular regardless of the sharing grain.
#include "bench/bench_util.h"

namespace midway {
namespace bench {
namespace {

struct SparseResult {
  uint64_t data_bytes = 0;
  uint64_t dirtybits_set = 0;
  uint64_t clean_reads = 0;
  uint64_t faults = 0;
  uint64_t pages_diffed = 0;
  double elapsed = 0;
};

SparseResult RunSparseWriter(DetectionMode mode, uint16_t procs, int total, int stride,
                             uint32_t line_size, uint32_t page_size) {
  SystemConfig config;
  config.mode = mode;
  config.num_procs = procs;
  config.page_size = page_size;
  System system(config);
  system.Run([&](Runtime& rt) {
    auto data = MakeSharedArray<int64_t>(rt, total, line_size);
    BarrierId barrier = rt.CreateBarrier();
    rt.BindBarrier(barrier, {data.WholeRange()});
    // init-phase: untracked raw stores, legal only before BeginParallel
    for (int i = 0; i < total; ++i) data.raw_mutable()[i] = 0;
    rt.BeginParallel();
    const int per = total / rt.nprocs();
    const int lo = rt.self() * per;
    const int hi = rt.self() + 1 == rt.nprocs() ? total : lo + per;
    for (int round = 0; round < 4; ++round) {
      for (int i = lo; i < hi; i += stride) {
        data[i] = data.Get(i) + 1;
      }
      rt.BarrierWait(barrier);
    }
  });
  CounterSnapshot total_counts = system.Total();
  SparseResult r;
  r.data_bytes = total_counts.data_bytes_sent;
  r.dirtybits_set = total_counts.dirtybits_set;
  r.clean_reads = total_counts.clean_dirtybits_read;
  r.faults = total_counts.write_faults;
  r.pages_diffed = total_counts.pages_diffed;
  return r;
}

void Run(int argc, char** argv) {
  Options options(argc, argv);
  SuiteOptions opts = SuiteOptions::FromArgs(options);
  const int total = static_cast<int>(options.GetInt("elements", opts.full ? 262144 : 32768));
  const int stride = static_cast<int>(options.GetInt("stride", 8));
  PrintHeader("Ablation: coherency unit size vs data amplification (sparse writer)", opts);
  std::printf("elements=%d stride=%d rounds=4\n", total, stride);

  Table t({"Coherency unit", "data sent (KB)", "amplification", "dirtybits set",
           "clean reads", "faults", "pages diffed"});
  // Senders count their updates once per barrier entry (the manager relays without
  // recounting), so the word-exact volume is touched-elements x rounds x 8 bytes.
  const uint64_t touched = static_cast<uint64_t>(total) / stride * 4 /*rounds*/ * 8 /*bytes*/;
  for (uint32_t line : {8u, 64u, 256u, 1024u, 4096u}) {
    SparseResult r = RunSparseWriter(DetectionMode::kRt, opts.procs, total, stride, line, 4096);
    t.AddRow({"RT line " + std::to_string(line) + "B", Table::Num(r.data_bytes / 1024),
              Table::Fixed(static_cast<double>(r.data_bytes) / static_cast<double>(touched), 2),
              Table::Num(r.dirtybits_set), Table::Num(r.clean_reads), Table::Num(r.faults),
              Table::Num(r.pages_diffed)});
  }
  t.AddSeparator();
  for (uint32_t page : {1024u, 4096u, 16384u}) {
    SparseResult r = RunSparseWriter(DetectionMode::kVmSoft, opts.procs, total, stride, 8, page);
    t.AddRow({"VM page " + std::to_string(page) + "B", Table::Num(r.data_bytes / 1024),
              Table::Fixed(static_cast<double>(r.data_bytes) / static_cast<double>(touched), 2),
              Table::Num(r.dirtybits_set), Table::Num(r.clean_reads), Table::Num(r.faults),
              Table::Num(r.pages_diffed)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "Expected shapes: RT data grows roughly linearly with the line size once lines exceed\n"
      "the sharing grain (stride x 8 bytes) — the false-sharing amplification the paper\n"
      "attributes to page-size coherency units; RT at fine lines matches the touched bytes\n"
      "(amplification ~1). VM ships word-exact diffs at every page size, but pays\n"
      "page-granular faults and diffs whose count shrinks as pages grow.\n");
}

}  // namespace
}  // namespace bench
}  // namespace midway

int main(int argc, char** argv) {
  midway::bench::Run(argc, argv);
  return 0;
}
