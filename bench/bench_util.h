// Shared helpers for the table/figure benchmark binaries.
#ifndef MIDWAY_BENCH_BENCH_UTIL_H_
#define MIDWAY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/common/options.h"
#include "src/common/table.h"

namespace midway {
namespace bench {

inline const std::vector<std::string>& AppNames() {
  static const std::vector<std::string> names = {"water", "quicksort", "matmul", "sor",
                                                 "cholesky"};
  return names;
}

struct SuiteOptions {
  uint16_t procs = 8;
  bool full = false;
  TransportKind transport = TransportKind::kInProc;

  static SuiteOptions FromArgs(const Options& options) {
    SuiteOptions s;
    s.procs = static_cast<uint16_t>(options.GetInt("procs", 8));
    s.full = options.FullScale();
    s.transport =
        options.GetString("transport", "inproc") == "tcp" ? TransportKind::kTcp
                                                          : TransportKind::kInProc;
    return s;
  }
};

// Runs every application under `mode`, returning reports keyed by app name.
inline std::map<std::string, AppReport> RunSuite(DetectionMode mode, const SuiteOptions& opts) {
  std::map<std::string, AppReport> reports;
  for (const std::string& app : AppNames()) {
    SystemConfig config;
    config.mode = mode;
    config.num_procs = opts.procs;
    config.transport = opts.transport;
    AppReport report = RunAppByName(app, config, opts.full);
    if (!report.verified) {
      std::fprintf(stderr, "WARNING: %s under %s did not verify against its sequential "
                           "reference\n",
                   app.c_str(), DetectionModeName(mode));
    }
    reports[app] = std::move(report);
  }
  return reports;
}

// Writes one CSV file (header row + data rows) when the user passed --csv=<dir>; returns
// true if written. Series benches use this to emit plot-ready data next to the tables.
inline bool MaybeWriteCsv(const Options& options, const std::string& name,
                          const std::vector<std::string>& header,
                          const std::vector<std::vector<double>>& rows) {
  const std::string dir = options.GetString("csv", "");
  if (dir.empty()) return false;
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  for (size_t i = 0; i < header.size(); ++i) {
    out << (i ? "," : "") << header[i];
  }
  out << "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i ? "," : "") << row[i];
    }
    out << "\n";
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

inline void PrintHeader(const std::string& title, const SuiteOptions& opts) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("procs=%u scale=%s transport=%s\n", opts.procs,
              opts.full ? "paper (--full)" : "fast-default (pass --full for paper scale)",
              opts.transport == TransportKind::kTcp ? "tcp" : "inproc");
}

}  // namespace bench
}  // namespace midway

#endif  // MIDWAY_BENCH_BENCH_UTIL_H_
