#!/usr/bin/env bash
# Repository lint: rules clang-tidy cannot express.
#
# Rule 1 — raw_mutable() discipline. SharedArray<T>::raw_mutable() bypasses write
# instrumentation, so a store through it is invisible to the consistency protocol AND to the
# entry-consistency checker. It is legal only for SPMD initialization before BeginParallel,
# and every such use must sit inside a block annotated with an `// init-phase` comment (on
# the same line or within the preceding WINDOW lines). Scope: application code — src/apps,
# examples, bench. Tests deliberately exercise raw paths and are excluded.
set -u

WINDOW=12
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

fail=0

check_file() {
  local file="$1"
  # awk keeps a rolling window of the last WINDOW lines; a raw_mutable( use passes if the
  # marker "init-phase" appears on its own line or anywhere in that window.
  awk -v window="$WINDOW" -v file="$file" '
    {
      buf[NR % (window + 1)] = $0
      if (index($0, "raw_mutable(") > 0) {
        ok = 0
        for (i = 0; i <= window; ++i) {
          line = NR - i
          if (line < 1) break
          if (index(buf[line % (window + 1)], "init-phase") > 0) { ok = 1; break }
        }
        if (!ok) {
          printf "%s:%d: raw_mutable() outside an `// init-phase` annotated block\n", file, NR
          bad = 1
        }
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$file" || fail=1
}

shopt -s nullglob
for file in src/apps/*.cc src/apps/*.h examples/*.cpp bench/*.cc bench/*.h; do
  check_file "$file"
done

if [ "$fail" -ne 0 ]; then
  echo ""
  echo "lint: raw_mutable() stores bypass write detection; annotate legitimate pre-"
  echo "BeginParallel initialization with an \`// init-phase\` comment within $WINDOW lines,"
  echo "or use the instrumented Set()/operator[] accessors."
  exit 1
fi

# Rule 2 — no node-0 pinning in coordination. Lock homes and recovery coordination are
# sharded by consistent hashing (src/core/shard.h: Runtime::HomeOf / CoordinatorOf); a
# hard-coded `node == 0` check or a modulo home assignment silently re-centralizes the
# protocol and recreates the single-node bottleneck the sharding removed. Barriers are the
# one documented exception (Runtime::BarrierManager, see docs/INTERNALS.md) and live in
# runtime.cc, not the recovery paths.
node0_fail=0
if grep -n 'self_ == 0\|SendTo(0,\|coordinator = 0;' src/core/runtime_recovery.cc; then
  echo "lint: hard-coded node-0 coordination in runtime_recovery.cc — use"
  echo "RecoveryCoordinatorLocked()/CoordinatorOf() instead"
  node0_fail=1
fi
if grep -n 'lock % nprocs\|lock_id % nprocs\|requester % nprocs' \
    src/core/runtime.h src/core/runtime.cc src/core/protocol.cc; then
  echo "lint: modulo lock-home assignment — use Runtime::HomeOf() (consistent hashing)"
  node0_fail=1
fi
if [ "$node0_fail" -ne 0 ]; then
  exit 1
fi

# Rule 3 — kDead is a hint, not a verdict. A detector Dead reading is one node's local
# suspicion; membership truth is the committed epoch state (node_dead_ / dead_pending_),
# reached only through the recovery module's verdict path — which is also what lets a
# wrongly-buried node protest its way back in (docs/INTERNALS.md §7). Code elsewhere in
# src/ that branches on NodeHealth::kDead directly is acting on uncommitted suspicion and
# bypasses that protocol. Allowed: the detector itself and the recovery module. Tests may
# compare health values freely.
kdead_fail=0
if grep -rn 'NodeHealth::kDead' src/ \
    --include='*.cc' --include='*.h' \
    | grep -v '^src/sync/failure_detector\.h:' \
    | grep -v '^src/core/runtime_recovery\.cc:'; then
  echo "lint: direct NodeHealth::kDead check outside the failure detector and the recovery"
  echo "module — branch on committed membership (node_dead_/dead_pending_ via the recovery"
  echo "verdict path) instead of raw detector suspicion"
  kdead_fail=1
fi
if [ "$kdead_fail" -ne 0 ]; then
  exit 1
fi

echo "lint: OK"
