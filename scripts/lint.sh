#!/usr/bin/env bash
# Thin wrapper over midway-lint, the protocol-discipline analyzer (tools/midway_lint/,
# rules R1..R6 documented in docs/ANALYSIS.md). The shell rules that used to live here —
# the raw_mutable() awk window, the node-0 greps, the kDead grep — became scope-aware
# rules R1/R2/R3 inside the tool.
#
# Builds the tool standalone into build-lint/ (no GTest/benchmark needed), reusing the
# main build's binary when it is fresh. All arguments pass through:
#   scripts/lint.sh                        # full scan; exit 1 on findings
#   scripts/lint.sh --rules R5            # wire-schema drift only
#   scripts/lint.sh --json report.json    # machine-readable report
#   scripts/lint.sh --update-wire-golden  # regenerate tools/wire_schema.golden
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-lint"

# Reuse an existing binary (main build first, then the standalone one) if it is no older
# than any analyzer source; otherwise configure and build standalone.
BIN=""
for candidate in "$ROOT/build/tools/midway-lint" "$BUILD/midway-lint"; do
  [ -x "$candidate" ] || continue
  if [ -z "$(find "$ROOT/tools/midway_lint" \( -name '*.cc' -o -name '*.h' \) \
              -newer "$candidate" 2>/dev/null)" ]; then
    BIN="$candidate"
    break
  fi
done
if [ -z "$BIN" ]; then
  cmake -S "$ROOT/tools" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" -j >/dev/null
  BIN="$BUILD/midway-lint"
fi

exec "$BIN" --root "$ROOT" "$@"
